//! The experiment runner behind every table and figure: named tuning
//! configurations, sweep helpers, and speedup arithmetic.

use nqp_advisor::{ControllerConfig, OnlineController};
use nqp_alloc::AllocatorKind;
use nqp_query::{EngineKind, WorkloadEnv, DEFAULT_BATCH_SIZE};
use nqp_sim::{HookChain, MemPolicy, RegionHook, SimConfig, ThreadPlacement, TuneFactory};
use nqp_tier::{TierDaemon, TierSpec};
use nqp_topology::MachineSpec;

/// Whether a configuration's knobs are fixed for the whole trial (the
/// paper's setting, and the default) or re-tuned mid-trial by the
/// epoch-driven online controller.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum AdvisorMode {
    /// Knobs are set once, up front.
    #[default]
    Static,
    /// An [`OnlineController`] runs at every region boundary; every
    /// decision and migration it makes is charged in model cycles.
    Online(ControllerConfig),
}

/// One point in the Table IV parameter space, with a display name.
#[derive(Debug, Clone)]
pub struct TuningConfig {
    /// Label shown in result tables.
    pub name: String,
    /// The OS/machine side of the configuration.
    pub sim: SimConfig,
    /// The preloaded allocator.
    pub allocator: AllocatorKind,
    /// Static knobs or online re-tuning.
    pub advisor: AdvisorMode,
    /// Tiered-memory policy; [`TierSpec::NONE`] (the default) installs
    /// no daemon and leaves pages where placement put them.
    pub tier: TierSpec,
    /// Operator architecture: tuple-at-a-time (the default and the
    /// differential oracle) or the vectorized batch-at-a-time path.
    pub engine: EngineKind,
    /// Host-side batch size for the vectorized path (never affects
    /// simulated cycles; see `nqp_query::vector`).
    pub batch: usize,
}

impl TuningConfig {
    /// The out-of-the-box configuration the paper starts every
    /// comparison from.
    pub fn os_default(machine: MachineSpec) -> Self {
        TuningConfig {
            name: "os-default".into(),
            sim: SimConfig::os_default(machine),
            allocator: AllocatorKind::Ptmalloc,
            advisor: AdvisorMode::Static,
            tier: TierSpec::NONE,
            engine: EngineKind::Tuple,
            batch: DEFAULT_BATCH_SIZE,
        }
    }

    /// The paper's fully tuned configuration for standalone workloads.
    pub fn tuned(machine: MachineSpec) -> Self {
        TuningConfig {
            name: "tuned".into(),
            sim: SimConfig::tuned(machine),
            allocator: AllocatorKind::Tbbmalloc,
            advisor: AdvisorMode::Static,
            tier: TierSpec::NONE,
            engine: EngineKind::Tuple,
            batch: DEFAULT_BATCH_SIZE,
        }
    }

    /// Builder-style rename.
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Builder-style allocator override.
    pub fn with_allocator(mut self, allocator: AllocatorKind) -> Self {
        self.allocator = allocator;
        self
    }

    /// Builder-style memory-policy override.
    pub fn with_policy(mut self, policy: MemPolicy) -> Self {
        self.sim = self.sim.with_policy(policy);
        self
    }

    /// Builder-style thread-placement override.
    pub fn with_threads(mut self, placement: ThreadPlacement) -> Self {
        self.sim = self.sim.with_threads(placement);
        self
    }

    /// Builder-style AutoNUMA toggle.
    pub fn with_autonuma(mut self, on: bool) -> Self {
        self.sim = self.sim.with_autonuma(on);
        self
    }

    /// Builder-style THP toggle.
    pub fn with_thp(mut self, on: bool) -> Self {
        self.sim = self.sim.with_thp(on);
        self
    }

    /// Builder-style deterministic fault plan (see
    /// [`nqp_sim::FaultPlan`]); trials under this configuration replay
    /// the same injected faults on every run.
    pub fn with_faults(mut self, plan: nqp_sim::FaultPlan) -> Self {
        self.sim = self.sim.with_faults(plan);
        self
    }

    /// Builder-style per-trial cycle budget: a trial whose simulated
    /// clock exceeds it ends with [`crate::runner::Outcome::Timeout`].
    pub fn with_trial_budget(mut self, cycles: u64) -> Self {
        self.sim = self.sim.with_trial_budget(cycles);
        self
    }

    /// Builder-style advisor mode: `AdvisorMode::Online` installs the
    /// epoch-driven controller on every environment this configuration
    /// builds (one fresh controller per trial attempt, so retries and
    /// resumed sweeps see identical decision sequences).
    pub fn with_advisor(mut self, advisor: AdvisorMode) -> Self {
        self.advisor = advisor;
        self
    }

    /// Builder-style tiering policy: an active [`TierSpec`] installs
    /// the [`TierDaemon`] on every environment this configuration
    /// builds, alongside (after) the online advisor if one is set.
    pub fn with_tier(mut self, tier: TierSpec) -> Self {
        self.tier = tier;
        self
    }

    /// Builder-style engine override: `EngineKind::Vectorized` routes
    /// every workload this configuration runs through the batch-at-a-
    /// time operator path (same results, different cycle profile).
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Builder-style batch-size override for the vectorized path.
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }

    /// Convert to the workload environment the W1–W4 runners take.
    pub fn env(&self, threads: usize) -> WorkloadEnv {
        let mut sim = self.sim.clone();
        let advisor = match &self.advisor {
            AdvisorMode::Online(cc) => Some(cc.clone()),
            AdvisorMode::Static => None,
        };
        let tier = self.tier;
        // The daemon only exists on machines with a slow tier; `--tier
        // none` and all-DRAM machines install no factory at all, so
        // those runs stay byte-identical to a tier-unaware build.
        let tier_active = TierDaemon::new(tier, &sim.machine).is_some();
        if advisor.is_some() || tier_active {
            let machine = sim.machine.clone();
            let mut factory = TuneFactory::new(move || {
                let mut hooks: Vec<Box<dyn RegionHook + Send>> = Vec::new();
                if let Some(cc) = &advisor {
                    hooks.push(Box::new(OnlineController::new(cc.clone())));
                }
                if let Some(daemon) = TierDaemon::new(tier, &machine) {
                    hooks.push(Box::new(daemon));
                }
                Box::new(HookChain(hooks))
            });
            if tier_active {
                factory = factory.with_page_heat();
            }
            sim = sim.with_tune(factory);
        }
        WorkloadEnv {
            sim,
            allocator: self.allocator,
            threads,
            engine: self.engine,
            batch: self.batch,
        }
    }
}

/// One measured configuration.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// The configuration's display name.
    pub name: String,
    /// Simulated execution cycles.
    pub cycles: u64,
}

/// Speedup of `b` relative to `a` (how many times faster `b` is).
pub fn speedup(a_cycles: u64, b_cycles: u64) -> f64 {
    a_cycles as f64 / b_cycles.max(1) as f64
}

/// Latency reduction of `tuned` vs `default`, in percent — the metric of
/// Figure 8.
pub fn reduction_pct(default_cycles: u64, tuned_cycles: u64) -> f64 {
    (1.0 - tuned_cycles as f64 / default_cycles.max(1) as f64) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use nqp_topology::machines;

    #[test]
    fn presets_differ() {
        let d = TuningConfig::os_default(machines::machine_a());
        let t = TuningConfig::tuned(machines::machine_a());
        assert_eq!(d.allocator, AllocatorKind::Ptmalloc);
        assert_eq!(t.allocator, AllocatorKind::Tbbmalloc);
        assert!(d.sim.autonuma && !t.sim.autonuma);
        assert_eq!(d.name, "os-default");
    }

    #[test]
    fn builders_compose() {
        let c = TuningConfig::os_default(machines::machine_b())
            .named("experiment-7")
            .with_allocator(AllocatorKind::Hoard)
            .with_policy(MemPolicy::Interleave)
            .with_threads(ThreadPlacement::Dense)
            .with_autonuma(false)
            .with_thp(false);
        assert_eq!(c.name, "experiment-7");
        assert_eq!(c.allocator, AllocatorKind::Hoard);
        assert_eq!(c.sim.mem_policy, MemPolicy::Interleave);
        assert_eq!(c.sim.thread_placement, ThreadPlacement::Dense);
        assert!(!c.sim.autonuma && !c.sim.thp);
        let env = c.env(8);
        assert_eq!(env.threads, 8);
        assert_eq!(env.allocator, AllocatorKind::Hoard);
    }

    #[test]
    fn speedup_and_reduction_arithmetic() {
        assert!((speedup(200, 100) - 2.0).abs() < 1e-12);
        assert!((reduction_pct(200, 100) - 50.0).abs() < 1e-12);
        assert!(reduction_pct(100, 120) < 0.0);
        // Degenerate zero denominators stay finite.
        assert!(speedup(100, 0).is_finite());
        assert!(reduction_pct(0, 10).is_finite());
    }
}
