//! Figure 8: TPC-H query latency reduction across the five database
//! systems on Machine A — OS default vs the paper's W5 tuning (First
//! Touch, AutoNUMA off, THP off except DBMSx, tbbmalloc).
//!
//! Methodology follows §IV-E: each query is measured in a fresh session
//! (page cache cleared), the cold run is discarded, and warm runs are
//! averaged.

use nqp_alloc::AllocatorKind;
use nqp_bench::{banner, tpch_sf, Tbl, SEED};
use nqp_datagen::tpch::TpchData;
use nqp_engines::{DbSystem, SystemKind, QUERY_COUNT};
use nqp_query::WorkloadEnv;
use nqp_sim::{MemPolicy, SimConfig};
use nqp_topology::machines;

const WARM_RUNS: usize = 2;

fn measure(system: SystemKind, env: &WorkloadEnv, data: &TpchData, qnum: usize) -> u64 {
    let mut db = DbSystem::boot(system, env, data);
    let _cold = db.run(qnum);
    let mut total = 0;
    for _ in 0..WARM_RUNS {
        total += db.run(qnum).latency_cycles;
    }
    total / WARM_RUNS as u64
}

fn main() {
    banner("Figure 8 — TPC-H (W5) latency reduction, Machine A, SF-scaled");
    let data = TpchData::generate(tpch_sf(), SEED);
    let machine = machines::machine_a();
    let threads = machine.total_hw_threads();

    let default_env = WorkloadEnv {
        sim: SimConfig::os_default(machine.clone()),
        allocator: AllocatorKind::Ptmalloc,
        threads,
        engine: nqp_query::EngineKind::Tuple,
        batch: nqp_query::DEFAULT_BATCH_SIZE,
    };
    let tuned_env = |thp: bool| WorkloadEnv {
        // The paper's W5 tuning changes no thread placement: First Touch,
        // AutoNUMA off, THP off (DBMSx keeps THP), tbbmalloc preloaded.
        sim: SimConfig::os_default(machine.clone())
            .with_policy(MemPolicy::FirstTouch)
            .with_autonuma(false)
            .with_thp(thp),
        allocator: AllocatorKind::Tbbmalloc,
        threads,
        engine: nqp_query::EngineKind::Tuple,
        batch: nqp_query::DEFAULT_BATCH_SIZE,
    };

    let mut t = Tbl::new(
        std::iter::once("query".to_string())
            .chain(SystemKind::ALL.iter().map(|s| s.label().to_string())),
    );
    let mut sums = vec![0.0f64; SystemKind::ALL.len()];
    for qnum in 1..=QUERY_COUNT {
        let mut row = vec![format!("Q{qnum}")];
        for (si, system) in SystemKind::ALL.into_iter().enumerate() {
            // The paper keeps THP on for DBMSx only.
            let tuned = tuned_env(system == SystemKind::DbmsX);
            let d = measure(system, &default_env, &data, qnum);
            let u = measure(system, &tuned, &data, qnum);
            let reduction = nqp_core::experiment::reduction_pct(d, u);
            sums[si] += reduction;
            row.push(format!("{reduction:.1}%"));
        }
        t.row(row);
    }
    let mut avg_row = vec!["average".to_string()];
    for s in &sums {
        avg_row.push(format!("{:.1}%", s / QUERY_COUNT as f64));
    }
    t.row(avg_row);
    t.print("Figure 8 — Query latency reduction (tuned vs OS default)");
    println!(
        "\nPaper shape: every system gains on average (MonetDB ~14.5%, \
         PostgreSQL smallest and least consistent, MySQL ~12%, DBMSx ~21%, \
         Quickstep ~7%); a handful of queries regress slightly."
    );
}
