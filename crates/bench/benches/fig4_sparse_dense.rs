//! Figure 4: Sparse vs Dense thread affinitization — W1 on Machine A,
//! varying thread count and dataset distribution.

use nqp_bench::{agg_cardinality, agg_n, banner, gcyc, Tbl, SEED};
use nqp_core::TuningConfig;
use nqp_datagen::{generate, Dataset};
use nqp_query::{run_aggregation_on, AggConfig};
use nqp_sim::ThreadPlacement;
use nqp_topology::machines;

fn main() {
    banner("Figure 4 — Sparse vs Dense thread affinity (W1, Machine A)");
    let mut t = Tbl::new(["dataset", "threads", "Dense (Gcyc)", "Sparse (Gcyc)", "Sparse/Dense"]);
    for dataset in Dataset::PAPER {
        let records = generate(dataset, agg_n(), agg_cardinality(), SEED);
        let mut cfg = AggConfig::w1(agg_n(), agg_cardinality(), SEED);
        cfg.dataset = dataset;
        for threads in [2usize, 4, 8, 16] {
            let run = |placement: ThreadPlacement| {
                let c = TuningConfig::os_default(machines::machine_a())
                    .with_threads(placement)
                    .with_autonuma(false)
                    .with_thp(false);
                run_aggregation_on(&c.env(threads), &cfg, &records).exec_cycles
            };
            let dense = run(ThreadPlacement::Dense);
            let sparse = run(ThreadPlacement::Sparse);
            t.row([
                dataset.label().to_string(),
                threads.to_string(),
                gcyc(dense),
                gcyc(sparse),
                format!("{:.2}", sparse as f64 / dense as f64),
            ]);
        }
    }
    t.print("Figure 4 — runtime by affinity strategy, thread count, and dataset");
    println!(
        "\nPaper shape: Sparse wins whenever the workload does not occupy \
         every hardware thread (extra memory controllers in play); at 16 \
         threads the strategies converge — on every dataset."
    );
}
