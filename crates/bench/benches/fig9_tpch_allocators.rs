//! Figure 9: the effect of the memory allocator on MonetDB's TPC-H Q5
//! and Q18 latency (Machine A) — the join+aggregation queries the paper
//! singles out.

use nqp_alloc::AllocatorKind;
use nqp_bench::{banner, tpch_sf, Tbl, SEED};
use nqp_datagen::tpch::TpchData;
use nqp_engines::{DbSystem, SystemKind};
use nqp_query::WorkloadEnv;
use nqp_sim::{MemPolicy, SimConfig};
use nqp_topology::machines;

const WARM_RUNS: usize = 3;

fn main() {
    banner("Figure 9 — Allocator effect on MonetDB TPC-H Q5/Q18 (Machine A)");
    let data = TpchData::generate(tpch_sf(), SEED);
    let machine = machines::machine_a();
    let threads = machine.total_hw_threads();

    let mut t = Tbl::new(["allocator", "Q5 (Mcyc)", "Q18 (Mcyc)"]);
    for alloc in AllocatorKind::MAIN {
        let env = WorkloadEnv {
            // W5 tuning leaves thread placement to the OS (paper §IV-E).
            sim: SimConfig::os_default(machine.clone())
                .with_policy(MemPolicy::FirstTouch)
                .with_autonuma(false)
                .with_thp(false),
            allocator: alloc,
            threads,
            engine: nqp_query::EngineKind::Tuple,
            batch: nqp_query::DEFAULT_BATCH_SIZE,
        };
        let mut cells = vec![alloc.label().to_string()];
        for qnum in [5usize, 18] {
            let mut db = DbSystem::boot(SystemKind::MonetDbLike, &env, &data);
            let _cold = db.run(qnum);
            let mut total = 0;
            for _ in 0..WARM_RUNS {
                total += db.run(qnum).latency_cycles;
            }
            cells.push(format!("{:.3}", total as f64 / WARM_RUNS as f64 / 1e6));
        }
        t.row(cells);
    }
    t.print("Figure 9 — Mean warm query latency by allocator");
    println!(
        "\nPaper shape: tbbmalloc cuts MonetDB's Q5 latency ~11% and Q18 \
         ~20% relative to ptmalloc (both queries mix joins and \
         aggregations, so the materialising engine allocates heavily)."
    );
}
