//! Figure 10: the application-agnostic decision flowchart, exercised
//! over every combination of its questions, plus a measured validation
//! that following the advice beats the OS default.

use nqp_bench::{agg_cardinality, agg_n, banner, gcyc, Tbl, SEED};
use nqp_core::advisor::{advise, WorkloadProfile};
use nqp_core::TuningConfig;
use nqp_datagen::{generate, Dataset};
use nqp_query::{run_aggregation_on, AggConfig, WorkloadEnv};
use nqp_topology::machines;

fn main() {
    banner("Figure 10 — Application-agnostic decision flowchart");
    let mut t = Tbl::new([
        "managed",
        "bw-bound",
        "superuser",
        "placed",
        "alloc-heavy",
        "mem-tight",
        "-> plan",
    ]);
    for bits in 0..64u32 {
        let p = WorkloadProfile {
            threads_managed: bits & 1 != 0,
            memory_bandwidth_bound: bits & 2 != 0,
            superuser: bits & 4 != 0,
            memory_placement_defined: bits & 8 != 0,
            allocation_heavy: bits & 16 != 0,
            free_memory_constrained: bits & 32 != 0,
        };
        let plan = advise(&p);
        t.row([
            p.threads_managed.to_string(),
            p.memory_bandwidth_bound.to_string(),
            p.superuser.to_string(),
            p.memory_placement_defined.to_string(),
            p.allocation_heavy.to_string(),
            p.free_memory_constrained.to_string(),
            plan.describe().replace('\n', "; "),
        ]);
    }
    t.print("Figure 10 — the flowchart's decision table (all 64 inputs)");

    // Validation: following the flowchart beats the OS default on W1.
    let records = generate(Dataset::MovingCluster, agg_n(), agg_cardinality(), SEED);
    let cfg = AggConfig::w1(agg_n(), agg_cardinality(), SEED);
    let machine = machines::machine_a();
    let default = TuningConfig::os_default(machine.clone());
    let plan = advise(&WorkloadProfile::analytics_default());
    let advised = WorkloadEnv {
        sim: plan.apply(default.sim.clone()),
        allocator: plan.allocator_or_default(),
        threads: 16,
        engine: nqp_query::EngineKind::Tuple,
        batch: nqp_query::DEFAULT_BATCH_SIZE,
    };
    let d = run_aggregation_on(&default.env(16), &cfg, &records).exec_cycles;
    let a = run_aggregation_on(&advised, &cfg, &records).exec_cycles;
    let mut v = Tbl::new(["configuration", "W1 runtime (Gcyc)"]);
    v.row(["OS default".to_string(), gcyc(d)]);
    v.row(["flowchart advice".to_string(), gcyc(a)]);
    v.print("Validation — W1 on Machine A, default vs advised");
    println!("speedup from following the flowchart: {:.2}x", d as f64 / a as f64);
}
