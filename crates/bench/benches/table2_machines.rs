//! Tables I, II, IV + Figure 1: the experiment workloads, machine
//! specifications, parameter space, and NUMA topologies.

use nqp_bench::{banner, Tbl};
use nqp_topology::{machines, render_ascii};

fn print_table1() {
    let mut t = Tbl::new(["Workload", "SQL equivalent"]);
    t.row(["W1 Holistic Aggregation", "SELECT groupkey, MEDIAN(val) FROM records GROUP BY groupkey"]);
    t.row(["W2 Distributive Aggregation", "SELECT groupkey, COUNT(val) FROM records GROUP BY groupkey"]);
    t.row(["W3 Hash Join", "SELECT * FROM t1 INNER JOIN t2 ON t1.pk = t2.fk"]);
    t.row(["W4 Index Nested Loop Join", "same join via ART / Masstree / B+tree / Skip List"]);
    t.row(["W5 TPC-H", "22 analytical queries (Q1 ... Q22)"]);
    t.print("Table I — Experiment Workloads");
}

fn print_table4() {
    use nqp_alloc::AllocatorKind;
    use nqp_datagen::Dataset;
    use nqp_engines::SystemKind;
    use nqp_indexes::IndexKind;
    use nqp_sim::{MemPolicy, ThreadPlacement};
    let mut t = Tbl::new(["Parameter", "Values (defaults bold in the paper)"]);
    t.row([
        "Thread Placement".to_string(),
        ThreadPlacement::ALL.map(|p| p.label()).join(", "),
    ]);
    t.row([
        "Memory Placement Policy".to_string(),
        MemPolicy::ALL.map(|p| p.label()).join(", "),
    ]);
    t.row([
        "Memory Allocator".to_string(),
        AllocatorKind::MAIN.map(|a| a.label()).join(", "),
    ]);
    t.row([
        "Dataset Distribution".to_string(),
        Dataset::PAPER.map(|d| d.label()).join(", "),
    ]);
    t.row([
        "Database System (W5)".to_string(),
        SystemKind::ALL.map(|s| s.label()).join(", "),
    ]);
    t.row([
        "W4 Index".to_string(),
        IndexKind::ALL.map(|i| i.label()).join(", "),
    ]);
    t.row(["OS Configuration".to_string(), "AutoNUMA on/off, THP on/off".to_string()]);
    t.row([
        "Hardware System".to_string(),
        machines::paper_machines()
            .iter()
            .map(|m| format!("Machine {}", m.name))
            .collect::<Vec<_>>()
            .join(", "),
    ]);
    t.print("Table IV — Experiment Parameters");
}

fn main() {
    banner("Tables I, II, IV — Workloads, Machines, Parameters / Figure 1 — Topologies");
    print_table1();
    print_table4();
    let specs = machines::paper_machines();
    let mut t = Tbl::new([
        "System",
        "CPUs/Model",
        "Nodes",
        "Topology",
        "Cores/Threads",
        "LLC",
        "Mem/Node",
        "Latency tiers",
    ]);
    for m in &specs {
        t.row([
            format!("Machine {}", m.name),
            m.cpu_model.clone(),
            m.topology.num_nodes().to_string(),
            m.topology.name().to_string(),
            format!("{}/{}", m.total_cores(), m.total_hw_threads()),
            format!("{} MB", m.llc.size_bytes >> 20),
            format!("{} GB", m.mem_per_node_bytes >> 30),
            format!("{:?}", m.topology.latency_tiers()),
        ]);
    }
    t.print("Table II");
    for m in &specs {
        println!("\n--- Figure 1: Machine {} ---", m.name);
        print!("{}", render_ascii(&m.topology));
    }
}
