//! Table III: perf-style profiling of thread placement — W1 on Machine A,
//! default (OS-managed) vs modified (Sparse affinity).

use nqp_bench::{agg_cardinality, agg_n, banner, Tbl, SEED};
use nqp_core::TuningConfig;
use nqp_datagen::{generate, Dataset};
use nqp_query::{run_aggregation_on, AggConfig};
use nqp_sim::ThreadPlacement;
use nqp_topology::machines;

fn main() {
    banner("Table III — Profiling thread placement (W1, Machine A)");
    let records = generate(Dataset::MovingCluster, agg_n(), agg_cardinality(), SEED);
    let cfg = AggConfig::w1(agg_n(), agg_cardinality(), SEED);

    let run = |placement: ThreadPlacement| {
        let c = TuningConfig::os_default(machines::machine_a()).with_threads(placement);
        run_aggregation_on(&c.env(16), &cfg, &records)
    };
    let default = run(ThreadPlacement::None);
    let modified = run(ThreadPlacement::Sparse);

    let pct = |d: f64, m: f64| -> String {
        if d == 0.0 {
            "n/a".into()
        } else {
            format!("{:+.2}%", (m - d) / d * 100.0)
        }
    };
    let mut t = Tbl::new(["Performance Metric", "Default", "Modified", "Percent Change"]);
    let rows: [(&str, u64, u64); 5] = [
        (
            "Thread Migrations",
            default.counters.thread_migrations,
            modified.counters.thread_migrations,
        ),
        ("Cache Misses", default.counters.cache_misses, modified.counters.cache_misses),
        (
            "Local Memory Accesses",
            default.counters.local_accesses,
            modified.counters.local_accesses,
        ),
        (
            "Remote Memory Accesses",
            default.counters.remote_accesses,
            modified.counters.remote_accesses,
        ),
        (
            "Local Access Ratio (x1000)",
            (default.counters.local_access_ratio() * 1000.0) as u64,
            (modified.counters.local_access_ratio() * 1000.0) as u64,
        ),
    ];
    for (name, d, m) in rows {
        t.row([name.to_string(), d.to_string(), m.to_string(), pct(d as f64, m as f64)]);
    }
    t.print("Table III — Default (OS scheduler) vs Modified (Sparse affinity)");
    println!(
        "\nPaper shape: migrations collapse (~-99.9%), cache misses drop \
         (~-33%), remote accesses drop, and the local access ratio rises."
    );
}
