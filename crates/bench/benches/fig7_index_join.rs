//! Figure 7: the index nested-loop join (W4) — join time per index ×
//! allocator × memory placement on Machine A, and build+join times at
//! each index's best configuration (7e).

use nqp_alloc::AllocatorKind;
use nqp_bench::{banner, gcyc, join_r_size, scale, Scale, Tbl, SEED};
use nqp_core::TuningConfig;
use nqp_datagen::JoinDataset;
use nqp_indexes::IndexKind;
use nqp_query::run_inl_join_on;
use nqp_sim::{MemPolicy, ThreadPlacement};
use nqp_topology::machines;

fn main() {
    banner("Figure 7 — Index nested-loop join (W4, Machine A)");
    let r_size = match scale() {
        Scale::Quick => join_r_size() / 2,
        Scale::Full => join_r_size(),
    };
    let data = JoinDataset::generate(r_size, SEED);
    let policies = [MemPolicy::FirstTouch, MemPolicy::Interleave, MemPolicy::Localalloc];

    let mut best: Vec<(IndexKind, u64, u64, String)> = Vec::new();
    for index in IndexKind::ALL {
        let mut t = Tbl::new(["allocator", "First Touch", "Interleave", "Localalloc"]);
        let mut best_for_index: Option<(u64, u64, String)> = None;
        for alloc in AllocatorKind::MAIN {
            let mut row = vec![alloc.label().to_string()];
            for policy in policies {
                let c = TuningConfig::os_default(machines::machine_a())
                    .with_threads(ThreadPlacement::Sparse)
                    .with_policy(policy)
                    .with_autonuma(false)
                    .with_thp(false)
                    .with_allocator(alloc);
                let out = run_inl_join_on(&c.env(16), index, &data);
                row.push(gcyc(out.join_cycles));
                let label = format!("{}+{}", alloc.label(), policy.label());
                if best_for_index
                    .as_ref()
                    .is_none_or(|(j, _, _)| out.join_cycles < *j)
                {
                    best_for_index = Some((out.join_cycles, out.build_cycles, label));
                }
            }
            t.row(row);
        }
        t.print(&format!("Figure 7 — {} index, join time (Gcyc)", index.label()));
        let (join, build, label) = best_for_index.expect("at least one configuration ran");
        best.push((index, join, build, label));
    }

    let mut t = Tbl::new(["index", "build (Gcyc)", "join (Gcyc)", "best configuration"]);
    for (index, join, build, label) in best {
        t.row([index.label().to_string(), gcyc(build), gcyc(join), label]);
    }
    t.print("Figure 7e — Build and join times at each index's best configuration");
    println!(
        "\nPaper shape: ART's varied node sizes reward jemalloc/tbbmalloc; \
         Masstree and B+tree favour superblock-style allocation; the \
         pre-built index makes W4's allocator gains smaller than W3's; ART \
         and B+tree are the two fastest indexes."
    );
}
