//! Criterion microbenchmarks of the core data structures (real wall-time
//! of the implementation, complementing the simulated-cycle harnesses).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use nqp_alloc::AllocatorKind;
use nqp_datagen::{generate, Dataset, JoinDataset, Zipf};
use nqp_indexes::{build_index, IndexKind};
use nqp_query::{run_aggregation_on, run_hash_join_on, AggConfig, WorkloadEnv};
use nqp_sim::{NumaSim, SimConfig};
use nqp_storage::SimHeap;
use nqp_topology::machines;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn bench_indexes(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_insert_1k");
    group.measurement_time(Duration::from_secs(2)).sample_size(10);
    for kind in IndexKind::ALL {
        group.bench_function(kind.label(), |b| {
            b.iter_batched(
                || {
                    let mut sim = NumaSim::new(SimConfig::tuned(machines::machine_b()));
                    let heap = SimHeap::new(AllocatorKind::Tbbmalloc, &mut sim);
                    (sim, heap)
                },
                |(mut sim, mut heap)| {
                    let mut index = build_index(kind);
                    sim.serial(&mut heap, |w, heap| {
                        for k in 0..1_000u64 {
                            index.insert(w, heap, k.wrapping_mul(0x9e37_79b9), k);
                        }
                    });
                    index.len()
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_workloads(c: &mut Criterion) {
    let mut group = c.benchmark_group("workloads_small");
    group.measurement_time(Duration::from_secs(2)).sample_size(10);
    let env = WorkloadEnv::tuned(machines::machine_b()).with_threads(4);
    let records = generate(Dataset::MovingCluster, 20_000, 2_000, 1);
    let cfg = AggConfig::w1(20_000, 2_000, 1);
    group.bench_function("w1_aggregation_20k", |b| {
        b.iter(|| run_aggregation_on(&env, &cfg, &records).exec_cycles)
    });
    let data = JoinDataset::generate(2_000, 1);
    group.bench_function("w3_hash_join_2k_x16", |b| {
        b.iter(|| run_hash_join_on(&env, &data).matches)
    });
    group.finish();
}

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("datagen");
    group.measurement_time(Duration::from_secs(2)).sample_size(10);
    group.bench_function("zipf_sample_10k", |b| {
        let z = Zipf::new(100_000, 0.5);
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| (0..10_000).map(|_| z.sample(&mut rng)).sum::<u64>())
    });
    group.bench_function("moving_cluster_100k", |b| {
        b.iter(|| generate(Dataset::MovingCluster, 100_000, 10_000, 7).len())
    });
    group.finish();
}

criterion_group!(benches, bench_indexes, bench_workloads, bench_generators);
criterion_main!(benches);
