//! Figure 6: memory allocators × memory placement policies × machines,
//! for W1 (holistic aggregation), W2 (distributive aggregation), and
//! W3 (hash join); plus the 6j dataset-distribution sweep.

use nqp_alloc::AllocatorKind;
use nqp_bench::{agg_cardinality, agg_n, banner, gcyc, join_r_size, Tbl, SEED};
use nqp_core::TuningConfig;
use nqp_datagen::{generate, Dataset, JoinDataset};
use nqp_query::{run_aggregation_on, run_hash_join_on, AggConfig, AggKind};
use nqp_sim::{MemPolicy, ThreadPlacement};
use nqp_topology::MachineSpec;

const POLICIES: [MemPolicy; 3] =
    [MemPolicy::FirstTouch, MemPolicy::Interleave, MemPolicy::Localalloc];

fn config(machine: MachineSpec, alloc: AllocatorKind, policy: MemPolicy) -> TuningConfig {
    TuningConfig::os_default(machine)
        .with_threads(ThreadPlacement::Sparse)
        .with_policy(policy)
        .with_autonuma(false)
        .with_thp(false)
        .with_allocator(alloc)
}

fn agg_panel(machine: &MachineSpec, kind: AggKind, title: &str) {
    let n = agg_n();
    let card = agg_cardinality();
    let dataset = match kind {
        AggKind::HolisticMedian => Dataset::MovingCluster,
        AggKind::DistributiveCount => Dataset::Zipfian,
    };
    let records = generate(dataset, n, card, SEED);
    let cfg = AggConfig { kind, n, cardinality: card, dataset, seed: SEED, interleaved_table: false };
    let threads = machine.total_hw_threads();
    let mut t = Tbl::new(["allocator", "First Touch", "Interleave", "Localalloc"]);
    for alloc in AllocatorKind::MAIN {
        let mut row = vec![alloc.label().to_string()];
        for policy in POLICIES {
            let c = config(machine.clone(), alloc, policy);
            row.push(gcyc(run_aggregation_on(&c.env(threads), &cfg, &records).exec_cycles));
        }
        t.row(row);
    }
    t.print(title);
}

fn join_panel(machine: &MachineSpec, title: &str) {
    let data = JoinDataset::generate(join_r_size(), SEED);
    let threads = machine.total_hw_threads();
    let mut t = Tbl::new(["allocator", "First Touch", "Interleave", "Localalloc"]);
    for alloc in AllocatorKind::MAIN {
        let mut row = vec![alloc.label().to_string()];
        for policy in POLICIES {
            let c = config(machine.clone(), alloc, policy);
            let out = run_hash_join_on(&c.env(threads), &data);
            row.push(gcyc(out.build_cycles + out.probe_cycles));
        }
        t.row(row);
    }
    t.print(title);
}

fn main() {
    banner("Figure 6 — Memory allocators x placement x machine (W1/W2/W3, Gcyc)");
    for machine in nqp_topology::machines::paper_machines() {
        agg_panel(
            &machine,
            AggKind::HolisticMedian,
            &format!("Figure 6 — W1 holistic aggregation, Machine {}", machine.name),
        );
        agg_panel(
            &machine,
            AggKind::DistributiveCount,
            &format!("Figure 6 — W2 distributive aggregation, Machine {}", machine.name),
        );
        join_panel(
            &machine,
            &format!("Figure 6 — W3 hash join, Machine {}", machine.name),
        );
    }

    // 6j: dataset distribution x allocator (W1, Machine A, Interleave).
    let machine = nqp_topology::machines::machine_a();
    let mut t = Tbl::new(["allocator", "moving-cluster", "sequential", "zipf"]);
    for alloc in AllocatorKind::MAIN {
        let mut row = vec![alloc.label().to_string()];
        for dataset in Dataset::PAPER {
            let records = generate(dataset, agg_n(), agg_cardinality(), SEED);
            let mut cfg = AggConfig::w1(agg_n(), agg_cardinality(), SEED);
            cfg.dataset = dataset;
            let c = config(machine.clone(), alloc, MemPolicy::Interleave);
            row.push(gcyc(run_aggregation_on(&c.env(16), &cfg, &records).exec_cycles));
        }
        t.row(row);
    }
    t.print("Figure 6j — W1 by dataset distribution, Machine A (Interleave)");
    println!(
        "\nPaper shape: tbbmalloc/jemalloc lead the allocation-heavy W1 and \
         W3 on every machine and dataset; ptmalloc trails; W2's gains come \
         from the Interleave policy, not the allocator."
    );
}
