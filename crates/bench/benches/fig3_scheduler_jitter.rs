//! Figure 3: consecutive unbound runs of W1 vs the Sparse-affinitized
//! baseline on Machine A — the OS scheduler's run-to-run jitter.

use nqp_bench::{agg_cardinality, agg_n, banner, Tbl, SEED};
use nqp_core::TuningConfig;
use nqp_datagen::{generate, Dataset};
use nqp_query::{run_aggregation_on, AggConfig};
use nqp_sim::ThreadPlacement;
use nqp_topology::machines;

fn main() {
    banner("Figure 3 — OS thread scheduler vs thread affinity (W1, Machine A)");
    let records = generate(Dataset::MovingCluster, agg_n(), agg_cardinality(), SEED);
    let cfg = AggConfig::w1(agg_n(), agg_cardinality(), SEED);

    // Sparse-affinitized baseline; everything else stays at OS defaults,
    // so affinity is the only variable (as in the paper's Figure 3).
    let base = TuningConfig::os_default(machines::machine_a())
        .with_threads(ThreadPlacement::Sparse);
    let baseline = run_aggregation_on(&base.env(16), &cfg, &records);

    let mut t = Tbl::new(["run", "relative runtime (x)", "thread migrations"]);
    for run in 0..10u64 {
        let unbound = TuningConfig::os_default(machines::machine_a())
            .with_threads(ThreadPlacement::None);
        let mut env = unbound.env(16);
        env.sim = env.sim.with_seed(1_000 + run);
        let out = run_aggregation_on(&env, &cfg, &records);
        t.row([
            format!("{}", run + 1),
            format!("{:.2}", out.exec_cycles as f64 / baseline.exec_cycles as f64),
            out.counters.thread_migrations.to_string(),
        ]);
    }
    t.print("Figure 3 — 10 consecutive runs, runtime relative to affinitized (Sparse)");
    println!(
        "\nPaper shape: every unbound run is slower than the affinitized one \
         (their worst case ~27% slower, best cases orders of magnitude). The \
         model reproduces consistently slower unbound runs with a heavy tail \
         from oversubscribed scheduler draws (~2x-9x); the paper's most \
         extreme 1e2-1e9 outliers are out of model scope (EXPERIMENTS.md)."
    );
}
