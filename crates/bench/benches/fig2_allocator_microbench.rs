//! Figure 2: the memory-allocator microbenchmark of §III-A8 on
//! Machine A — (a) multi-threaded scalability, (b) memory consumption
//! overhead.

use nqp_alloc::microbench::{run_microbench, MicrobenchConfig};
use nqp_alloc::AllocatorKind;
use nqp_bench::{banner, scale, Scale, Tbl};
use nqp_topology::machines;

fn main() {
    banner("Figure 2 — Memory Allocator Microbenchmark (Machine A)");
    let machine = machines::machine_a();
    let cfg = match scale() {
        Scale::Quick => MicrobenchConfig { ops_per_thread: 20_000, live_target: 6_000, seed: 42 },
        Scale::Full => MicrobenchConfig { ops_per_thread: 100_000, live_target: 20_000, seed: 42 },
    };
    let threads = [1usize, 2, 4, 8, 16];

    let mut time = Tbl::new(
        std::iter::once("allocator".to_string())
            .chain(threads.iter().map(|t| format!("t={t} (Mcyc)"))),
    );
    let mut overhead = Tbl::new(
        std::iter::once("allocator".to_string())
            .chain(threads.iter().map(|t| format!("t={t} (x)"))),
    );
    for kind in AllocatorKind::ALL {
        let mut trow = vec![kind.label().to_string()];
        let mut orow = vec![kind.label().to_string()];
        for &t in &threads {
            let r = run_microbench(kind, &machine, t, &cfg);
            trow.push(format!("{:.2}", r.elapsed_cycles as f64 / 1e6));
            orow.push(format!("{:.3}", r.overhead));
        }
        time.row(trow);
        overhead.row(orow);
    }
    time.print("Figure 2a — Multi-threaded Scalability (elapsed, lower is better)");
    overhead.print("Figure 2b — Memory Consumption Overhead (resident/requested)");
    println!(
        "\nPaper shape: tcmalloc fastest at 1 thread, collapsing with threads; \
         Hoard/tbbmalloc scale best; supermalloc contends on its global lock; \
         mcmalloc's overhead explodes with threads (it and supermalloc are \
         dropped from later experiments)."
    );
}
