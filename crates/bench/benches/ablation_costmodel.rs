//! Ablation: how sensitive are the paper's conclusions to the cost
//! model's design parameters?
//!
//! DESIGN.md calls out three load-bearing modelling choices: the
//! streaming MLP factor, the memory-controller bandwidth caps, and the
//! AutoNUMA scan cadence. This harness sweeps each and re-checks the
//! three headline orderings:
//!
//! * I>F — Interleave beats First Touch on Machine A (Figure 5a),
//! * S>D — Sparse beats Dense at 4 of 16 threads (Figure 4),
//! * A!  — AutoNUMA on is slower than off (Figure 5a).

use nqp_bench::{banner, Tbl, SEED};
use nqp_core::TuningConfig;
use nqp_datagen::{generate, Dataset, Record};
use nqp_query::{run_aggregation_on, AggConfig};
use nqp_sim::{MemPolicy, ThreadPlacement};
use nqp_topology::machines;

const N: usize = 250_000;
const CARD: u64 = 80_000;

struct Verdicts {
    interleave_beats_ft: bool,
    sparse_beats_dense: bool,
    autonuma_hurts: bool,
}

fn check(mutate: impl Fn(&mut TuningConfig), records: &[Record]) -> Verdicts {
    let cfg = AggConfig::w1(N, CARD, SEED);
    let run = |placement: ThreadPlacement, policy: MemPolicy, autonuma: bool, threads: usize| {
        let mut c = TuningConfig::os_default(machines::machine_a())
            .with_threads(placement)
            .with_policy(policy)
            .with_autonuma(autonuma)
            .with_thp(false);
        mutate(&mut c);
        run_aggregation_on(&c.env(threads), &cfg, records).exec_cycles
    };
    Verdicts {
        interleave_beats_ft: run(ThreadPlacement::Sparse, MemPolicy::Interleave, false, 16)
            < run(ThreadPlacement::Sparse, MemPolicy::FirstTouch, false, 16),
        sparse_beats_dense: run(ThreadPlacement::Sparse, MemPolicy::FirstTouch, false, 4)
            < run(ThreadPlacement::Dense, MemPolicy::FirstTouch, false, 4),
        autonuma_hurts: run(ThreadPlacement::Sparse, MemPolicy::FirstTouch, true, 16)
            > run(ThreadPlacement::Sparse, MemPolicy::FirstTouch, false, 16),
    }
}

fn mark(v: bool) -> &'static str {
    if v {
        "holds"
    } else {
        "FLIPS"
    }
}

fn main() {
    banner("Ablation — cost-model parameter sensitivity (W1, Machine A)");
    let records = generate(Dataset::MovingCluster, N, CARD, SEED);
    let mut t = Tbl::new(["parameter", "value", "I>F", "S>D", "A!"]);

    for mlp in [1u64, 2, 4, 8] {
        let v = check(|c| c.sim.costs.mlp = mlp, &records);
        t.row([
            "streaming MLP".to_string(),
            format!("{mlp}{}", if mlp == 4 { " (default)" } else { "" }),
            mark(v.interleave_beats_ft).into(),
            mark(v.sparse_beats_dense).into(),
            mark(v.autonuma_hurts).into(),
        ]);
    }
    for scale in [0.5f64, 1.0, 2.0, 4.0] {
        let v = check(
            |c| {
                c.sim.machine.controller_lines_per_cycle *= scale;
                c.sim.machine.link_lines_per_cycle *= scale;
            },
            &records,
        );
        t.row([
            "bandwidth caps".to_string(),
            format!("x{scale}{}", if scale == 1.0 { " (default)" } else { "" }),
            mark(v.interleave_beats_ft).into(),
            mark(v.sparse_beats_dense).into(),
            mark(v.autonuma_hurts).into(),
        ]);
    }
    for period in [5_000_000u64, 10_000_000, 20_000_000] {
        let v = check(|c| c.sim.costs.autonuma_scan_period_cycles = period, &records);
        t.row([
            "AutoNUMA scan period".to_string(),
            format!(
                "{}M{}",
                period / 1_000_000,
                if period == 10_000_000 { " (default)" } else { "" }
            ),
            mark(v.interleave_beats_ft).into(),
            mark(v.sparse_beats_dense).into(),
            mark(v.autonuma_hurts).into(),
        ]);
    }
    for hold in [50u64, 100, 200] {
        let v = check(|c| c.sim.costs.thread_migration_cycles = hold * 30, &records);
        t.row([
            "migration cost".to_string(),
            format!("{} cyc{}", hold * 30, if hold == 100 { " (default)" } else { "" }),
            mark(v.interleave_beats_ft).into(),
            mark(v.sparse_beats_dense).into(),
            mark(v.autonuma_hurts).into(),
        ]);
    }
    t.print("Ablation — do the headline orderings survive parameter changes?");
    println!(
        "\nReading: the orderings are stable at the defaults and across the MLP \
         and migration-cost axes. The bandwidth-cap axis is the physically \
         meaningful sensitivity: starve every controller (x0.5) and even \
         Interleave saturates, so First Touch's locality wins back; give the \
         machine abundant bandwidth (x2-x4) and placement stops mattering — \
         which is exactly the Machine B/C story of Figure 5d. Stretching the \
         AutoNUMA scan period to 2x its default makes the daemon too lazy to \
         measurably hurt, confirming the scan cadence is what its cost is \
         made of."
    );
}
