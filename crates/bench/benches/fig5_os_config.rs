//! Figure 5: the OS-configuration experiments — AutoNUMA (5a/5b), THP ×
//! allocator (5c), and the combined effect across machines (5d). All on
//! W1 with Sparse affinity.

use nqp_alloc::AllocatorKind;
use nqp_bench::{agg_cardinality, agg_n, banner, gcyc, Tbl, SEED};
use nqp_core::TuningConfig;
use nqp_datagen::{generate, Dataset};
use nqp_query::{run_aggregation_on, AggConfig, AggOutcome};
use nqp_sim::{MemPolicy, ThreadPlacement};
use nqp_topology::machines;

fn run(
    machine: nqp_topology::MachineSpec,
    policy: MemPolicy,
    autonuma: bool,
    thp: bool,
    allocator: AllocatorKind,
) -> AggOutcome {
    let n = agg_n();
    let card = agg_cardinality();
    let records = generate(Dataset::MovingCluster, n, card, SEED);
    let cfg = AggConfig::w1(n, card, SEED);
    let threads = machine.total_hw_threads();
    let c = TuningConfig::os_default(machine)
        .with_threads(ThreadPlacement::Sparse)
        .with_policy(policy)
        .with_autonuma(autonuma)
        .with_thp(thp)
        .with_allocator(allocator);
    run_aggregation_on(&c.env(threads), &cfg, &records)
}

fn main() {
    banner("Figure 5 — AutoNUMA and Transparent Hugepages (W1)");
    let policies = [MemPolicy::FirstTouch, MemPolicy::Interleave, MemPolicy::Localalloc];

    // 5a + 5b: AutoNUMA x memory placement, runtime and LAR (Machine A).
    let mut t5a = Tbl::new(["policy", "AutoNUMA On (Gcyc)", "AutoNUMA Off (Gcyc)"]);
    let mut t5b = Tbl::new(["policy", "LAR On (%)", "LAR Off (%)"]);
    for policy in policies {
        let on = run(machines::machine_a(), policy, true, false, AllocatorKind::Ptmalloc);
        let off = run(machines::machine_a(), policy, false, false, AllocatorKind::Ptmalloc);
        t5a.row([
            policy.label().to_string(),
            gcyc(on.exec_cycles),
            gcyc(off.exec_cycles),
        ]);
        t5b.row([
            policy.label().to_string(),
            format!("{:.0}", on.counters.local_access_ratio() * 100.0),
            format!("{:.0}", off.counters.local_access_ratio() * 100.0),
        ]);
    }
    t5a.print("Figure 5a — AutoNUMA effect on execution time (Machine A)");
    t5b.print("Figure 5b — AutoNUMA effect on Local Access Ratio (Machine A)");
    println!(
        "Paper shape: AutoNUMA raises LAR yet slows every policy — LAR is \
         not a performance predictor; best = Interleave with AutoNUMA off."
    );

    // 5c: THP x allocator (Machine A, First Touch, AutoNUMA off).
    let mut t5c = Tbl::new(["allocator", "THP Off (Gcyc)", "THP On (Gcyc)", "THP On/Off"]);
    for alloc in AllocatorKind::MAIN {
        let off = run(machines::machine_a(), MemPolicy::FirstTouch, false, false, alloc);
        let on = run(machines::machine_a(), MemPolicy::FirstTouch, false, true, alloc);
        t5c.row([
            alloc.label().to_string(),
            gcyc(off.exec_cycles),
            gcyc(on.exec_cycles),
            format!("{:.2}", on.exec_cycles as f64 / off.exec_cycles as f64),
        ]);
    }
    t5c.print("Figure 5c — Impact of THP on memory allocators (Machine A)");
    println!(
        "Paper shape: THP is detrimental-to-negligible; tcmalloc, jemalloc \
         and tbbmalloc handle it worst, ptmalloc and Hoard shrug."
    );

    // 5d: combined AutoNUMA+THP on/off x policy, across machines.
    let mut t5d = Tbl::new(["machine", "config", "First Touch", "Interleave", "Localalloc"]);
    for machine in machines::paper_machines() {
        for (label, on) in [("AutoNUMA+THP enabled", true), ("AutoNUMA+THP disabled", false)] {
            let mut row = vec![format!("Machine {}", machine.name), label.to_string()];
            for policy in policies {
                let out = run(machine.clone(), policy, on, on, AllocatorKind::Ptmalloc);
                row.push(gcyc(out.exec_cycles));
            }
            t5d.row(row);
        }
    }
    t5d.print("Figure 5d — Combined AutoNUMA & THP effect by machine (Gcyc)");
    println!(
        "Paper shape: Machine A improves the most from disabling the \
         switches and interleaving (its topology is deepest), Machine C \
         moderately, Machine B the least (its remote latency is nearly \
         flat)."
    );
}
