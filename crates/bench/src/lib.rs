//! Shared plumbing for the figure/table bench harnesses: experiment
//! scales, a fixed-width table printer, and the standard workload sizes.
//!
//! Every bench target under `benches/` regenerates one table or figure
//! of the paper and prints it in the paper's row/series structure. Set
//! `NQP_FULL=1` to run at larger scale (slower, closer to the paper's
//! input sizes; shapes are scale-stable).

use std::fmt::Display;

/// Whether the harness runs at quick (CI) or full scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Default: minutes for the whole suite.
    Quick,
    /// `NQP_FULL=1`: larger inputs, closer to the paper's sizes.
    Full,
}

/// Read the scale from the environment.
pub fn scale() -> Scale {
    if std::env::var("NQP_FULL").is_ok_and(|v| v != "0" && !v.is_empty()) {
        Scale::Full
    } else {
        Scale::Quick
    }
}

/// W1/W2 record count.
pub fn agg_n() -> usize {
    match scale() {
        Scale::Quick => 600_000,
        Scale::Full => 2_000_000,
    }
}

/// W1/W2 group-by cardinality (the directory must exceed Machine A's
/// LLC for the placement effects to appear, as at the paper's scale).
pub fn agg_cardinality() -> u64 {
    match scale() {
        Scale::Quick => 150_000,
        Scale::Full => 1_000_000,
    }
}

/// W3/W4 build-relation size (probe side is 16x).
pub fn join_r_size() -> usize {
    match scale() {
        Scale::Quick => 40_000,
        Scale::Full => 250_000,
    }
}

/// W5 TPC-H scale factor.
pub fn tpch_sf() -> f64 {
    match scale() {
        Scale::Quick => 0.01,
        Scale::Full => 0.02,
    }
}

/// Standard data seed for every harness.
pub const SEED: u64 = 42;

/// Giga-cycle formatting used in all runtime tables (the paper reports
/// "Billion CPU Cycles").
pub fn gcyc(cycles: u64) -> String {
    format!("{:.3}", cycles as f64 / 1e9)
}

/// Minimal fixed-width table printer.
pub struct Tbl {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Tbl {
    /// Start a table with the given column headers.
    pub fn new<S: Display>(headers: impl IntoIterator<Item = S>) -> Self {
        Tbl {
            headers: headers.into_iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (cells are stringified).
    pub fn row<S: Display>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        self.rows
            .push(cells.into_iter().map(|c| c.to_string()).collect());
        self
    }

    /// Render the table.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let line = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths.get(i).copied().unwrap_or(8)))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&line(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row));
            out.push('\n');
        }
        out
    }

    /// Print the table with a figure/table heading.
    pub fn print(&self, title: &str) {
        println!("\n=== {title} ===");
        print!("{}", self.render());
    }
}

/// Print the harness banner (scale note included).
pub fn banner(what: &str) {
    println!(
        "# {what}  [scale: {:?}; set NQP_FULL=1 for full scale]",
        scale()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Tbl::new(["name", "value"]);
        t.row(["short", "1"]);
        t.row(["a-much-longer-name", "22"]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("short "));
    }

    #[test]
    fn quick_scale_is_default() {
        // The test environment does not set NQP_FULL.
        if std::env::var("NQP_FULL").is_err() {
            assert_eq!(scale(), Scale::Quick);
            assert!(agg_n() < 1_000_000);
        }
    }

    #[test]
    fn gcyc_formats_billions() {
        assert_eq!(gcyc(1_500_000_000), "1.500");
        assert_eq!(gcyc(0), "0.000");
    }
}
