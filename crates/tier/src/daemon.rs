//! The promotion/demotion daemon: a [`RegionHook`] that turns per-page
//! heat into bounded page migrations between memory tiers.

use std::collections::BTreeMap;

use nqp_sim::{EpochView, RegionHook, TuneAction, SMALL_PAGE};
use nqp_topology::MachineSpec;

use crate::spec::{TierPolicy, TierSpec};

/// Tracked pages with zero decayed heat are forgotten after this many
/// untouched epochs (bounds daemon memory; long enough that an
/// `lru-epoch` idle horizon always fires first).
const FORGET_AFTER_EPOCHS: u64 = 16;

/// What the daemon remembers about one 4 KB page.
#[derive(Debug, Clone, Copy)]
struct PageState {
    /// Telescoping decayed touch count: halved every epoch, plus the
    /// epoch's fresh touches.
    heat: u64,
    /// Whether the page currently lives on a slow-tier node (updated
    /// from observed heat homes and from our own issued migrations).
    slow: bool,
    /// Last epoch the page was touched.
    last_touch: u64,
}

/// Epoch-driven tiering daemon; see the crate docs for the model.
///
/// All state is a pure function of the [`EpochView`] sequence: the heat
/// ledger is a `BTreeMap` (deterministic iteration), candidate ranking
/// breaks every tie by page index, and the daemon never sees wall-clock
/// or RNG — so its decision sequence is byte-identical across host
/// parallelism, sharding, and kill/resume.
#[derive(Debug)]
pub struct TierDaemon {
    spec: TierSpec,
    /// Per-node slow-tier flags for the simulated machine.
    slow_node: Vec<bool>,
    /// Total DRAM (fast-node) capacity, in 4 KB pages.
    dram_capacity_pages: u64,
    /// The decayed-heat ledger.
    pages: BTreeMap<u64, PageState>,
    /// Epochs observed (frozen fault epochs excluded).
    epoch: u64,
}

impl TierDaemon {
    /// Build a daemon for `machine`. Returns `None` for the `none`
    /// policy and for machines with no slow tier (nothing to manage —
    /// installing no hook keeps all-DRAM runs byte-identical to a
    /// tier-unaware build).
    pub fn new(spec: TierSpec, machine: &MachineSpec) -> Option<TierDaemon> {
        if spec.is_none() || !machine.has_slow_tier() {
            return None;
        }
        let nodes = machine.topology.num_nodes();
        let slow_node: Vec<bool> = (0..nodes).map(|n| machine.is_slow_tier(n)).collect();
        let dram_capacity_pages = (0..nodes)
            .filter(|&n| !machine.is_slow_tier(n))
            .map(|n| machine.mem_bytes_of_node(n) / SMALL_PAGE)
            .sum();
        Some(TierDaemon {
            spec,
            slow_node,
            dram_capacity_pages,
            pages: BTreeMap::new(),
            epoch: 0,
        })
    }

    /// The spec the daemon was built from.
    #[must_use]
    pub fn spec(&self) -> TierSpec {
        self.spec
    }

    /// Pages currently tracked in the heat ledger (tests/telemetry).
    #[must_use]
    pub fn tracked_pages(&self) -> usize {
        self.pages.len()
    }

    /// Decay the ledger one epoch and fold in the fresh touches.
    fn fold(&mut self, view: &EpochView<'_>) {
        let epoch = self.epoch;
        self.pages.retain(|_, st| {
            st.heat /= 2;
            st.heat > 0 || epoch.saturating_sub(st.last_touch) <= FORGET_AFTER_EPOCHS
        });
        for ph in view.page_heat {
            let slow = self.slow_node.get(ph.home).copied().unwrap_or(false);
            let st = self
                .pages
                .entry(ph.page)
                .or_insert(PageState { heat: 0, slow, last_touch: epoch });
            st.heat = st.heat.saturating_add(ph.touches);
            st.slow = slow;
            st.last_touch = epoch;
        }
    }

    /// Free DRAM pages according to the view's residency counts.
    fn dram_free_pages(&self, view: &EpochView<'_>) -> u64 {
        let used: u64 = view
            .node_used_pages
            .iter()
            .zip(&self.slow_node)
            .filter(|&(_, &slow)| !slow)
            .map(|(&u, _)| u)
            .sum();
        self.dram_capacity_pages.saturating_sub(used)
    }

    /// Slow-tier pages ranked hottest first (heat desc, page asc),
    /// filtered by `min_heat` and, for `lru-epoch`, by touched-this-epoch.
    fn promote_candidates(&self, min_heat: u64, this_epoch_only: bool) -> Vec<u64> {
        let mut cand: Vec<(u64, u64)> = self
            .pages
            .iter()
            .filter(|(_, st)| {
                st.slow
                    && st.heat >= min_heat
                    && (!this_epoch_only || st.last_touch == self.epoch)
            })
            .map(|(&page, st)| (st.heat, page))
            .collect();
        cand.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        cand.into_iter().map(|(_, page)| page).collect()
    }

    /// Tracked DRAM pages ranked coldest first (heat asc, last-touch
    /// asc, page asc), optionally only those idle for `min_idle` epochs.
    fn demote_candidates(&self, min_idle: u64) -> Vec<u64> {
        let mut cand: Vec<(u64, u64, u64)> = self
            .pages
            .iter()
            .filter(|(_, st)| {
                !st.slow && self.epoch.saturating_sub(st.last_touch) >= min_idle
            })
            .map(|(&page, st)| (st.heat, st.last_touch, page))
            .collect();
        cand.sort_unstable();
        cand.into_iter().map(|(_, _, page)| page).collect()
    }

    /// Record our own issued migrations in the ledger, so next epoch's
    /// candidate sets don't re-propose pages already queued (the engine
    /// applies the actions before the next region runs).
    fn mark_moved(&mut self, pages: &[u64], to_slow: bool) {
        for page in pages {
            if let Some(st) = self.pages.get_mut(page) {
                st.slow = to_slow;
            }
        }
    }
}

impl RegionHook for TierDaemon {
    fn on_region_end(&mut self, view: &EpochView<'_>) -> Vec<TuneAction> {
        if view.fault_active {
            // Freeze through fault windows, like the online advisor's
            // circuit breaker: heat observed under a storm or outage
            // would poison the ledger.
            return Vec::new();
        }
        self.epoch += 1;
        self.fold(view);
        let budget = self.spec.budget_pages;
        let cap = budget as usize;
        let mut actions = Vec::new();
        match self.spec.policy {
            TierPolicy::None => {}
            TierPolicy::HotWatermark { dwm, pwm } => {
                let mut promote = self.promote_candidates(pwm, false);
                promote.truncate(cap);
                // Demote ahead of the promotions so the copies have
                // room: keep `dwm` pages free after the promoted pages
                // land.
                let free = self.dram_free_pages(view);
                let need =
                    (promote.len() as u64 + dwm).saturating_sub(free).min(budget);
                if need > 0 {
                    let mut demote = self.demote_candidates(0);
                    demote.truncate(need as usize);
                    if !demote.is_empty() {
                        self.mark_moved(&demote, true);
                        actions.push(TuneAction::DemotePages {
                            pages: demote,
                            max_pages: budget,
                        });
                    }
                }
                if !promote.is_empty() {
                    self.mark_moved(&promote, false);
                    actions.push(TuneAction::PromotePages {
                        pages: promote,
                        max_pages: budget,
                    });
                }
            }
            TierPolicy::LruEpoch { idle } => {
                let mut demote = self.demote_candidates(idle);
                demote.truncate(cap);
                if !demote.is_empty() {
                    self.mark_moved(&demote, true);
                    actions.push(TuneAction::DemotePages {
                        pages: demote,
                        max_pages: budget,
                    });
                }
                let mut promote = self.promote_candidates(1, true);
                promote.truncate(cap);
                if !promote.is_empty() {
                    self.mark_moved(&promote, false);
                    actions.push(TuneAction::PromotePages {
                        pages: promote,
                        max_pages: budget,
                    });
                }
            }
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nqp_sim::{Counters, MemPolicy, PageHeat, ThreadPlacement};
    use nqp_topology::machines;

    fn daemon(spec: &str) -> TierDaemon {
        TierDaemon::new(
            TierSpec::parse(spec).unwrap(),
            &machines::machine_b_cxl(),
        )
        .unwrap()
    }

    /// Drive one epoch: `heat` is `(page, home, touches)`, `used` the
    /// per-node residency.
    fn epoch(
        d: &mut TierDaemon,
        region: u64,
        heat: &[(u64, usize, u64)],
        used: &[u64],
        fault: bool,
    ) -> Vec<TuneAction> {
        let heat: Vec<PageHeat> = heat
            .iter()
            .map(|&(page, home, touches)| PageHeat { page, home, touches })
            .collect();
        let view = EpochView {
            region,
            now_cycles: (region + 1) * 1_000,
            elapsed_cycles: 1_000,
            counters: Counters::default(),
            node_used_pages: used,
            mem_policy: MemPolicy::FirstTouch,
            thread_placement: ThreadPlacement::Sparse,
            autonuma: false,
            threads: 4,
            fault_active: fault,
            page_heat: &heat,
        };
        d.on_region_end(&view)
    }

    #[test]
    fn none_or_all_dram_builds_no_daemon() {
        assert!(TierDaemon::new(TierSpec::NONE, &machines::machine_b_cxl()).is_none());
        let spec = TierSpec::parse("hot-watermark").unwrap();
        assert!(TierDaemon::new(spec, &machines::machine_b()).is_none());
    }

    #[test]
    fn hot_watermark_promotes_hot_slow_pages_in_heat_order() {
        let mut d = daemon("hot-watermark:dwm=0,pwm=4,budget=2");
        // Node 4 is machine_b_cxl's slow node. Pages 10 and 20 are hot,
        // 30 is below the watermark; budget admits both hot pages,
        // hottest first.
        let acts = epoch(
            &mut d,
            0,
            &[(20, 4, 9), (10, 4, 5), (30, 4, 3), (7, 0, 50)],
            &[100, 0, 0, 0, 400],
            false,
        );
        assert_eq!(
            acts,
            vec![TuneAction::PromotePages { pages: vec![20, 10], max_pages: 2 }]
        );
    }

    #[test]
    fn hot_watermark_demotes_coldest_dram_page_under_pressure() {
        // DRAM capacity of machine_b_cxl: 4 nodes × 8 MB = 8192 pages.
        let mut d = daemon("hot-watermark:dwm=0,pwm=4,budget=8");
        // DRAM completely full; one hot slow page needs one demotion.
        let acts = epoch(
            &mut d,
            0,
            &[(10, 4, 9), (40, 0, 1), (41, 1, 30)],
            &[2048, 2048, 2048, 2048, 400],
            false,
        );
        assert_eq!(
            acts,
            vec![
                TuneAction::DemotePages { pages: vec![40], max_pages: 8 },
                TuneAction::PromotePages { pages: vec![10], max_pages: 8 },
            ]
        );
    }

    #[test]
    fn heat_decays_until_pages_stop_qualifying() {
        let mut d = daemon("hot-watermark:dwm=0,pwm=4,budget=8");
        // Hot once (heat 6), then untouched: 6 → 3 < pwm, no action.
        // Keep the page on the slow node by leaving DRAM full so the
        // first epoch's promotion has nowhere to land... simpler: use a
        // page the daemon thinks it promoted, then check no re-promote.
        let acts = epoch(&mut d, 0, &[(10, 4, 6)], &[0, 0, 0, 0, 400], false);
        assert_eq!(acts.len(), 1, "{acts:?}");
        // Next epoch the ledger says page 10 is on DRAM now: nothing to
        // promote even though heat (3) persists.
        let acts = epoch(&mut d, 1, &[], &[1, 0, 0, 0, 399], false);
        assert!(acts.is_empty(), "{acts:?}");
    }

    #[test]
    fn lru_epoch_demotes_idle_dram_and_promotes_touched_slow() {
        let mut d = daemon("lru-epoch:idle=2,budget=8");
        // Epoch 1: pages 5 (DRAM) and 9 (slow) touched → 9 promoted.
        let acts = epoch(&mut d, 0, &[(5, 0, 2), (9, 4, 1)], &[10, 0, 0, 0, 50], false);
        assert_eq!(
            acts,
            vec![TuneAction::PromotePages { pages: vec![9], max_pages: 8 }]
        );
        // Epochs 2-3: only page 9 touched; page 5 goes idle for 2
        // epochs and is demoted.
        let acts = epoch(&mut d, 1, &[(9, 0, 1)], &[11, 0, 0, 0, 49], false);
        assert!(acts.is_empty(), "{acts:?}");
        let acts = epoch(&mut d, 2, &[(9, 0, 1)], &[11, 0, 0, 0, 49], false);
        assert_eq!(
            acts,
            vec![TuneAction::DemotePages { pages: vec![5], max_pages: 8 }]
        );
    }

    #[test]
    fn freezes_through_fault_windows() {
        let mut d = daemon("hot-watermark:dwm=0,pwm=1,budget=8");
        let acts = epoch(&mut d, 0, &[(10, 4, 50)], &[0, 0, 0, 0, 400], true);
        assert!(acts.is_empty());
        assert_eq!(d.tracked_pages(), 0, "frozen epochs must not fold heat");
    }

    #[test]
    fn decision_sequence_is_deterministic() {
        let run = || {
            let mut d = daemon("hot-watermark:dwm=16,pwm=2,budget=4");
            let mut all = Vec::new();
            for r in 0..6u64 {
                let heat: Vec<(u64, usize, u64)> = (0..20)
                    .map(|p| (p, if p % 3 == 0 { 4 } else { 0 }, (p * 7 + r) % 5))
                    .collect();
                all.push(epoch(&mut d, r, &heat, &[2048, 2048, 2048, 2048, 64], false));
            }
            all
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn ledger_forgets_cold_untouched_pages() {
        let mut d = daemon("lru-epoch:idle=2,budget=8");
        epoch(&mut d, 0, &[(5, 0, 1)], &[1, 0, 0, 0, 0], false);
        assert_eq!(d.tracked_pages(), 1);
        for r in 1..=FORGET_AFTER_EPOCHS + 2 {
            epoch(&mut d, r, &[], &[1, 0, 0, 0, 0], false);
        }
        assert_eq!(d.tracked_pages(), 0);
    }
}
