//! `--tier` flag grammar: policy name plus `k=v` knobs.

use nqp_sim::SimError;

/// Default per-epoch migration budget, in 4 KB pages. Roughly what one
/// kswapd wakeup moves; big enough to drain a hot working set in a few
/// epochs, small enough that a bad decision is cheap to undo.
pub const DEFAULT_BUDGET_PAGES: u64 = 512;
/// Default promote watermark: decayed touches a slow page needs before
/// the copy pays for itself.
pub const DEFAULT_PWM: u64 = 4;
/// Default demote watermark, in free DRAM pages: below this the daemon
/// starts parking cold pages on the slow tier.
pub const DEFAULT_DWM: u64 = 128;
/// Default LRU idle horizon, in epochs.
pub const DEFAULT_IDLE: u64 = 2;

/// Which promotion/demotion policy the daemon runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TierPolicy {
    /// No daemon: pages stay where placement put them.
    None,
    /// Promote slow pages touched this epoch; demote DRAM pages
    /// untouched for `idle` epochs.
    LruEpoch {
        /// Consecutive untouched epochs before a DRAM page is demoted.
        idle: u64,
    },
    /// Promote slow pages whose decayed heat reaches `pwm`; demote the
    /// coldest DRAM pages when free DRAM falls under `dwm` pages.
    HotWatermark {
        /// Demote watermark: minimum free DRAM pages to maintain.
        dwm: u64,
        /// Promote watermark: decayed heat threshold.
        pwm: u64,
    },
}

/// A parsed `--tier` spec: the policy and its per-epoch page budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierSpec {
    /// The promotion/demotion policy.
    pub policy: TierPolicy,
    /// Migration budget per epoch, in 4 KB pages (promote and demote
    /// each get the full budget — matching kernel behaviour, where
    /// reclaim and promotion run on separate threads).
    pub budget_pages: u64,
}

impl TierSpec {
    /// The do-nothing spec (`--tier none`, and the default).
    pub const NONE: TierSpec =
        TierSpec { policy: TierPolicy::None, budget_pages: DEFAULT_BUDGET_PAGES };

    /// Whether this spec installs no daemon.
    #[must_use]
    pub fn is_none(&self) -> bool {
        self.policy == TierPolicy::None
    }

    /// Parse a `--tier` token: `none`, `lru-epoch[:idle=N,budget=N]`,
    /// or `hot-watermark[:dwm=N,pwm=N,budget=N]`. Malformed input is a
    /// typed [`SimError::BadSpec`] naming the flag and the bad token.
    pub fn parse(s: &str) -> Result<TierSpec, SimError> {
        let bad = |token: &str, why: &str| SimError::BadSpec {
            flag: "--tier".into(),
            token: token.into(),
            why: why.into(),
        };
        let (name, args) = match s.split_once(':') {
            Some((n, a)) => (n, Some(a)),
            None => (s, None),
        };
        let mut budget = DEFAULT_BUDGET_PAGES;
        let mut dwm = DEFAULT_DWM;
        let mut pwm = DEFAULT_PWM;
        let mut idle = DEFAULT_IDLE;
        if let Some(args) = args {
            for kv in args.split(',').filter(|t| !t.is_empty()) {
                let Some((k, v)) = kv.split_once('=') else {
                    return Err(bad(kv, "expected key=value"));
                };
                let v: u64 = v
                    .parse()
                    .map_err(|_| bad(kv, "value must be a non-negative integer"))?;
                match k {
                    "budget" => budget = v,
                    "dwm" if name == "hot-watermark" => dwm = v,
                    "pwm" if name == "hot-watermark" => pwm = v,
                    "idle" if name == "lru-epoch" => idle = v.max(1),
                    _ => return Err(bad(kv, "unknown key for this policy")),
                }
            }
        }
        let policy = match name {
            "none" => {
                if args.is_some() {
                    return Err(bad(s, "`none` takes no arguments"));
                }
                TierPolicy::None
            }
            "lru-epoch" => TierPolicy::LruEpoch { idle },
            "hot-watermark" => TierPolicy::HotWatermark { dwm, pwm },
            other => {
                return Err(bad(
                    other,
                    "unknown tier policy (none, lru-epoch, hot-watermark)",
                ))
            }
        };
        if policy != TierPolicy::None && budget == 0 {
            return Err(bad(s, "budget must be at least 1 page"));
        }
        Ok(TierSpec { policy, budget_pages: budget })
    }

    /// Canonical display label (round-trips through [`TierSpec::parse`]).
    #[must_use]
    pub fn label(&self) -> String {
        match self.policy {
            TierPolicy::None => "none".into(),
            TierPolicy::LruEpoch { idle } => {
                format!("lru-epoch:idle={idle},budget={}", self.budget_pages)
            }
            TierPolicy::HotWatermark { dwm, pwm } => {
                format!("hot-watermark:dwm={dwm},pwm={pwm},budget={}", self.budget_pages)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_bare_policies_with_defaults() {
        assert_eq!(TierSpec::parse("none").unwrap(), TierSpec::NONE);
        assert_eq!(
            TierSpec::parse("lru-epoch").unwrap().policy,
            TierPolicy::LruEpoch { idle: DEFAULT_IDLE }
        );
        assert_eq!(
            TierSpec::parse("hot-watermark").unwrap().policy,
            TierPolicy::HotWatermark { dwm: DEFAULT_DWM, pwm: DEFAULT_PWM }
        );
    }

    #[test]
    fn parses_knobs() {
        let s = TierSpec::parse("hot-watermark:dwm=64,pwm=9,budget=128").unwrap();
        assert_eq!(s.policy, TierPolicy::HotWatermark { dwm: 64, pwm: 9 });
        assert_eq!(s.budget_pages, 128);
        let s = TierSpec::parse("lru-epoch:idle=5").unwrap();
        assert_eq!(s.policy, TierPolicy::LruEpoch { idle: 5 });
    }

    #[test]
    fn labels_round_trip() {
        for spec in [
            TierSpec::parse("lru-epoch:idle=3,budget=64").unwrap(),
            TierSpec::parse("hot-watermark:dwm=32,pwm=2").unwrap(),
            TierSpec::NONE,
        ] {
            assert_eq!(TierSpec::parse(&spec.label()).unwrap(), spec);
        }
    }

    #[test]
    fn rejects_malformed_specs_typed() {
        for bad in [
            "warm",
            "hot-watermark:dwm",
            "hot-watermark:dwm=x",
            "hot-watermark:idle=3",
            "lru-epoch:pwm=1",
            "none:budget=4",
            "hot-watermark:budget=0",
        ] {
            match TierSpec::parse(bad) {
                Err(SimError::BadSpec { flag, .. }) => assert_eq!(flag, "--tier"),
                other => panic!("{bad:?} parsed as {other:?}"),
            }
        }
    }
}
