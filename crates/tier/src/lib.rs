// Harness-path code must surface faults, never panic on them: unwrap()
// and expect() are denied outside tests (enforced by scripts/check.sh).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
//! Tiered-memory management: an epoch-driven daemon that migrates pages
//! between DRAM and slow-tier (NVM/CXL) memory nodes.
//!
//! Machines like [`nqp_topology::machines::machine_b_cxl`] model a
//! hybrid memory system the way *Emulating Hybrid Memory on NUMA
//! Hardware* does on real hardware: the slow tier is a memory-only NUMA
//! node — no cores, asymmetric read/write latency, a fraction of DRAM
//! bandwidth. Data that spills past the small DRAM capacities lands
//! there, and an untiered run pays slow-tier latency on every miss for
//! the rest of the trial.
//!
//! The [`TierDaemon`] is the OS-style fix, reproduced inside the
//! simulator's determinism contract. It plugs into the
//! [`nqp_sim::RegionHook`] seam: at every region boundary it sees an
//! [`nqp_sim::EpochView`] carrying per-page touch counts
//! ([`nqp_sim::PageHeat`], collected because the daemon's factory sets
//! `wants_page_heat`), folds them into *telescoping decayed hotness*
//! (each epoch halves the old score and adds the new touches — the
//! exponential moving average kernels use for page aging), and returns
//! `PromotePages`/`DemotePages` actions the engine applies and charges
//! before the next region runs. Decisions are pure functions of
//! model-cycle state: serial, `--jobs N`, `--shards N`, and
//! killed-then-resumed sweeps see byte-identical decision sequences.
//!
//! Two active policies (plus `none`):
//!
//! * [`TierPolicy::HotWatermark`] — promote slow pages whose decayed
//!   heat reaches the promote watermark `pwm`; when DRAM free pages
//!   fall under the demote watermark `dwm`, demote the coldest DRAM
//!   pages to make room. The watermark pair mirrors kernel
//!   `zone_watermark` / kswapd behaviour.
//! * [`TierPolicy::LruEpoch`] — promote every slow page touched in the
//!   epoch; demote DRAM pages untouched for `idle` consecutive epochs
//!   (a coarse CLOCK approximation).
//!
//! Every migration is billed by the engine at kernel page-migration
//! rates and bounded by the per-epoch `budget` — a daemon that thrashes
//! pays for it in the cycles it is judged on.

mod daemon;
mod spec;

pub use daemon::TierDaemon;
pub use spec::{TierPolicy, TierSpec};
