//! The application-agnostic decision flowchart of Figure 10, as code.
//!
//! The flowchart walks a practitioner through the paper's findings:
//! affinitize threads (Sparse unless bandwidth-rich), disable AutoNUMA
//! and THP if you can, optimise the memory placement (Interleave), and
//! override the allocator for allocation-heavy workloads (tbbmalloc, or
//! jemalloc when memory is tight).

use nqp_alloc::AllocatorKind;
use nqp_sim::{MemPolicy, SimConfig, ThreadPlacement};

/// Answers to the flowchart's questions, describing a workload and its
/// operating environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadProfile {
    /// "Is thread placement managed?" — does the application already pin
    /// its threads?
    pub threads_managed: bool,
    /// "Bound by memory bandwidth?" — does the workload saturate memory
    /// controllers (scans, joins) rather than sharing caches?
    pub memory_bandwidth_bound: bool,
    /// "Superuser access?" — can the operator toggle kernel switches?
    pub superuser: bool,
    /// "Memory placement defined?" — does the application already place
    /// its memory explicitly?
    pub memory_placement_defined: bool,
    /// "Allocation-heavy workload?" — many dynamic allocations during
    /// execution (holistic aggregation, hash-join builds)?
    pub allocation_heavy: bool,
    /// "Free memory is constrained?" — is allocator memory overhead a
    /// concern?
    pub free_memory_constrained: bool,
}

impl WorkloadProfile {
    /// The profile of the paper's standalone query workloads on a
    /// dedicated machine: nothing managed, bandwidth-bound, root access.
    pub fn analytics_default() -> Self {
        WorkloadProfile {
            threads_managed: false,
            memory_bandwidth_bound: true,
            superuser: true,
            memory_placement_defined: false,
            allocation_heavy: true,
            free_memory_constrained: false,
        }
    }
}

/// The flowchart's output: an ordered set of recommendations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TuningPlan {
    /// Affinitize threads with this strategy (None = leave as managed).
    pub thread_placement: Option<ThreadPlacement>,
    /// Disable the AutoNUMA balancer (requires superuser).
    pub disable_autonuma: bool,
    /// Disable Transparent Hugepages (requires superuser).
    pub disable_thp: bool,
    /// Apply this memory placement policy (None = leave as defined).
    pub mem_policy: Option<MemPolicy>,
    /// Preload this allocator (None = keep the system default).
    pub allocator: Option<AllocatorKind>,
}

/// Walk the Figure 10 flowchart.
pub fn advise(p: &WorkloadProfile) -> TuningPlan {
    // Start: is thread placement managed? If not, affinitize; the
    // strategy depends on whether bandwidth or sharing dominates.
    let thread_placement = if p.threads_managed {
        None
    } else if p.memory_bandwidth_bound {
        Some(ThreadPlacement::Sparse)
    } else {
        Some(ThreadPlacement::Dense)
    };
    // Superuser? Disable AutoNUMA and THP.
    let (disable_autonuma, disable_thp) = (p.superuser, p.superuser);
    // Memory placement defined? If not, optimise it (Interleave).
    let mem_policy = if p.memory_placement_defined {
        None
    } else {
        Some(MemPolicy::Interleave)
    };
    // Allocation-heavy? Evaluate and override the allocator: jemalloc
    // when free memory is constrained, tbbmalloc otherwise.
    let allocator = if !p.allocation_heavy {
        None
    } else if p.free_memory_constrained {
        Some(AllocatorKind::Jemalloc)
    } else {
        Some(AllocatorKind::Tbbmalloc)
    };
    TuningPlan { thread_placement, disable_autonuma, disable_thp, mem_policy, allocator }
}

impl TuningPlan {
    /// Apply the plan's OS-level pieces to a simulator configuration
    /// (the model equivalent of `numactl` + sysctl + `LD_PRELOAD`).
    pub fn apply(&self, mut cfg: SimConfig) -> SimConfig {
        if let Some(tp) = self.thread_placement {
            cfg.thread_placement = tp;
        }
        if self.disable_autonuma {
            cfg.autonuma = false;
        }
        if self.disable_thp {
            cfg.thp = false;
        }
        if let Some(mp) = self.mem_policy {
            cfg.mem_policy = mp;
        }
        cfg
    }

    /// The allocator to preload, defaulting to the system's ptmalloc.
    pub fn allocator_or_default(&self) -> AllocatorKind {
        self.allocator.unwrap_or(AllocatorKind::Ptmalloc)
    }

    /// Human-readable summary, one action per line.
    pub fn describe(&self) -> String {
        let mut out = Vec::new();
        match self.thread_placement {
            Some(tp) => out.push(format!("affinitize threads ({})", tp.label())),
            None => out.push("keep application thread placement".into()),
        }
        if self.disable_autonuma {
            out.push("disable AutoNUMA".into());
        }
        if self.disable_thp {
            out.push("disable Transparent Hugepages".into());
        }
        match self.mem_policy {
            Some(mp) => out.push(format!("set memory placement ({})", mp.label())),
            None => out.push("keep application memory placement".into()),
        }
        match self.allocator {
            Some(a) => out.push(format!("preload {}", a.label())),
            None => out.push("keep default allocator".into()),
        }
        out.join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_bound_gets_sparse() {
        let p = WorkloadProfile::analytics_default();
        let plan = advise(&p);
        assert_eq!(plan.thread_placement, Some(ThreadPlacement::Sparse));
        assert_eq!(plan.mem_policy, Some(MemPolicy::Interleave));
        assert_eq!(plan.allocator, Some(AllocatorKind::Tbbmalloc));
        assert!(plan.disable_autonuma && plan.disable_thp);
    }

    #[test]
    fn cache_bound_gets_dense() {
        let p = WorkloadProfile { memory_bandwidth_bound: false, ..WorkloadProfile::analytics_default() };
        assert_eq!(advise(&p).thread_placement, Some(ThreadPlacement::Dense));
    }

    #[test]
    fn managed_threads_are_left_alone() {
        let p = WorkloadProfile { threads_managed: true, ..WorkloadProfile::analytics_default() };
        assert_eq!(advise(&p).thread_placement, None);
    }

    #[test]
    fn no_superuser_means_no_kernel_toggles() {
        let p = WorkloadProfile { superuser: false, ..WorkloadProfile::analytics_default() };
        let plan = advise(&p);
        assert!(!plan.disable_autonuma && !plan.disable_thp);
        // But the placement policy can still mitigate (the paper's note).
        assert_eq!(plan.mem_policy, Some(MemPolicy::Interleave));
    }

    #[test]
    fn constrained_memory_prefers_jemalloc() {
        let p = WorkloadProfile { free_memory_constrained: true, ..WorkloadProfile::analytics_default() };
        assert_eq!(advise(&p).allocator, Some(AllocatorKind::Jemalloc));
    }

    #[test]
    fn allocation_light_keeps_default_allocator() {
        let p = WorkloadProfile { allocation_heavy: false, ..WorkloadProfile::analytics_default() };
        let plan = advise(&p);
        assert_eq!(plan.allocator, None);
        assert_eq!(plan.allocator_or_default(), AllocatorKind::Ptmalloc);
    }

    #[test]
    fn apply_produces_the_tuned_config() {
        use nqp_topology::machines;
        let plan = advise(&WorkloadProfile::analytics_default());
        let cfg = plan.apply(SimConfig::os_default(machines::machine_a()));
        let tuned = SimConfig::tuned(machines::machine_a());
        assert_eq!(cfg.thread_placement, tuned.thread_placement);
        assert_eq!(cfg.mem_policy, tuned.mem_policy);
        assert_eq!(cfg.autonuma, tuned.autonuma);
        assert_eq!(cfg.thp, tuned.thp);
    }

    #[test]
    fn describe_mentions_every_decision() {
        let text = advise(&WorkloadProfile::analytics_default()).describe();
        for needle in ["sparse", "AutoNUMA", "Hugepages", "interleave", "tbbmalloc"] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }
}
