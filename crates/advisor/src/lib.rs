// Harness-path code must surface faults, never panic on them: unwrap()
// and expect() are denied outside tests (enforced by scripts/check.sh).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
//! NUMA tuning advisors: static and online.
//!
//! Two advisors share this crate because they share one brain:
//!
//! * [`flowchart`] is the paper's Figure 10 decision flowchart — ask
//!   six questions about a workload, get a [`TuningPlan`]. It advises
//!   **once, up front**, which is exactly what the paper evaluates and
//!   exactly what breaks when the workload shifts phases mid-run.
//! * [`controller`] is the **online** advisor: an epoch-driven runtime
//!   controller ([`OnlineController`]) that watches the live counter
//!   deltas at every region boundary and re-tunes the running engine —
//!   re-homing pages, re-placing threads, flipping the placement
//!   policy, toggling AutoNUMA — using the *same flowchart* as its
//!   candidate generator. The robustness discipline around those knob
//!   turns is the point: decision hysteresis, a bounded per-epoch
//!   migration budget, guarded trial-and-rollback with per-knob
//!   quarantine, and a [`CircuitBreaker`] that freezes tuning through
//!   fault storms and re-arms after stable epochs.
//!
//! Every controller decision is a pure function of model-cycle state
//! (the [`nqp_sim::EpochView`] handed to the region hook), so serial,
//! parallel, and killed-then-resumed sweeps see byte-identical
//! decision sequences, and tracing on/off cannot change them.

pub mod breaker;
pub mod controller;
pub mod flowchart;

pub use breaker::CircuitBreaker;
pub use controller::{ControllerConfig, Knob, OnlineController};
pub use flowchart::{advise, TuningPlan, WorkloadProfile};
