//! The controller's fault circuit breaker.
//!
//! Re-tuning through a fault storm is worse than not tuning at all:
//! counters polluted by evacuations and preemption storms would drive
//! the controller toward configurations chosen for a machine that no
//! longer exists. The breaker freezes tuning the epoch a disturbance
//! is observed and re-arms only after a run of stable epochs, counting
//! re-arms saturatingly so even a pathological flap history cannot
//! wrap the counter.
//!
//! The breaker is deliberately time-free: it counts *epochs*, not
//! cycles, so its behaviour is a pure function of the observation
//! sequence — the determinism contract of the whole controller. A
//! storm of zero length (freeze immediately followed by quiet
//! observations) re-arms like any other: freezing never wedges.

/// Freeze/re-arm state machine, driven by one observation per epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircuitBreaker {
    frozen: bool,
    /// Consecutive quiet epochs observed while frozen.
    stable: u64,
    /// Quiet epochs required before a frozen breaker re-arms.
    rearm_after: u64,
    /// Times the breaker has re-armed, saturating at `u32::MAX`.
    rearm_count: u32,
}

impl CircuitBreaker {
    /// A breaker that re-arms after `rearm_after` consecutive quiet
    /// epochs. `0` means the first quiet observation re-arms.
    #[must_use]
    pub fn new(rearm_after: u64) -> Self {
        CircuitBreaker { frozen: false, stable: 0, rearm_after, rearm_count: 0 }
    }

    /// Trip the breaker: tuning freezes and the stability run resets.
    /// Idempotent while already frozen.
    pub fn freeze(&mut self) {
        self.frozen = true;
        self.stable = 0;
    }

    /// Feed one epoch's observation. `quiet` means no fault activity,
    /// no evacuation, no node loss this epoch. Returns `true` exactly
    /// when this observation re-armed the breaker.
    pub fn observe(&mut self, quiet: bool) -> bool {
        if !self.frozen {
            return false;
        }
        if !quiet {
            self.stable = 0;
            return false;
        }
        self.stable += 1;
        if self.stable >= self.rearm_after {
            self.frozen = false;
            self.stable = 0;
            self.rearm_count = self.rearm_count.saturating_add(1);
            return true;
        }
        false
    }

    /// Whether tuning is currently frozen.
    #[must_use]
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// Consecutive quiet epochs observed so far while frozen.
    #[must_use]
    pub fn stable_epochs(&self) -> u64 {
        self.stable
    }

    /// Quiet epochs required before a frozen breaker re-arms.
    #[must_use]
    pub fn rearm_after(&self) -> u64 {
        self.rearm_after
    }

    /// How many times the breaker has re-armed (saturating).
    #[must_use]
    pub fn rearm_count(&self) -> u32 {
        self.rearm_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn freezes_and_rearms_after_stable_epochs() {
        let mut b = CircuitBreaker::new(2);
        assert!(!b.is_frozen());
        assert!(!b.observe(true), "observing while armed is a no-op");
        b.freeze();
        assert!(b.is_frozen());
        assert!(!b.observe(true));
        assert_eq!(b.stable_epochs(), 1);
        assert!(b.observe(true), "second quiet epoch re-arms");
        assert!(!b.is_frozen());
        assert_eq!(b.rearm_count(), 1);
    }

    #[test]
    fn noisy_epoch_resets_the_stability_run() {
        let mut b = CircuitBreaker::new(2);
        b.freeze();
        assert!(!b.observe(true));
        assert!(!b.observe(false), "fault recurrence resets the run");
        assert_eq!(b.stable_epochs(), 0);
        assert!(!b.observe(true));
        assert!(b.observe(true));
        assert_eq!(b.rearm_count(), 1);
    }

    #[test]
    fn zero_length_fault_storm_still_rearms() {
        // Regression: a storm that freezes the breaker and is gone by
        // the very next observation must not wedge the controller —
        // the breaker re-arms from quiet epochs alone.
        let mut b = CircuitBreaker::new(2);
        b.freeze();
        assert!(b.is_frozen(), "frozen even though the storm was empty");
        assert!(!b.observe(true));
        assert!(b.observe(true), "re-armed without ever observing the fault");
        assert_eq!(b.rearm_count(), 1);

        // rearm_after = 0: the first quiet observation re-arms.
        let mut b = CircuitBreaker::new(0);
        b.freeze();
        assert!(b.observe(true));
        assert_eq!(b.rearm_count(), 1);
    }

    #[test]
    fn repeated_freezes_while_frozen_are_idempotent() {
        let mut b = CircuitBreaker::new(1);
        b.freeze();
        assert!(!b.observe(false));
        b.freeze();
        b.freeze();
        assert!(b.observe(true));
        assert_eq!(b.rearm_count(), 1);
    }

    #[test]
    fn rearm_count_saturates() {
        let mut b = CircuitBreaker { frozen: false, stable: 0, rearm_after: 0, rearm_count: u32::MAX - 1 };
        b.freeze();
        assert!(b.observe(true));
        assert_eq!(b.rearm_count(), u32::MAX);
        b.freeze();
        assert!(b.observe(true), "still re-arms at the counter ceiling");
        assert_eq!(b.rearm_count(), u32::MAX, "count saturates instead of wrapping");
    }
}
