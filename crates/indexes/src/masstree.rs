//! A Masstree-style trie of B+trees over simulated memory.
//!
//! Masstree splits keys into fixed-width slices and indexes each slice
//! with a B+tree; here a `u64` key becomes two 32-bit slices. Layer 0 is
//! one B+tree over the high slice; each of its values points to a small
//! handle allocation holding the root of a layer-1 B+tree over the low
//! slice. Grouping many keys per B+tree node is what the paper credits
//! for Masstree's affinity with Hoard's superblock-oriented allocation
//! (§IV-D3).

use crate::btree::BPlusTree;
use crate::{Index, IndexKind};
use nqp_sim::{VAddr, Worker};
use nqp_storage::SimHeap;

/// Handle allocation: `[layer-1 root: u64][layer-1 height: u64]`.
/// The indirection keeps layer-0 values stable while layer-1 roots move
/// as their trees split.
const HANDLE_BYTES: u64 = 16;

/// See module docs.
#[derive(Debug)]
pub struct Masstree {
    layer0: BPlusTree,
    /// Rust-side shadow of the layer-1 trees, keyed by handle address.
    ///
    /// `BPlusTree` is a tiny `{root, len}` record whose bulk lives in
    /// simulated memory; the shadow map keeps the per-subtree length
    /// without another sim access, while root pointers round-trip
    /// through the handle so they genuinely live (and are re-read) in
    /// simulated memory.
    subtrees: std::collections::HashMap<VAddr, u64>,
    len: u64,
}

fn high(key: u64) -> u64 {
    key >> 32
}

fn low(key: u64) -> u64 {
    key & 0xFFFF_FFFF
}

impl Masstree {
    /// An empty tree.
    pub fn new() -> Self {
        Masstree { layer0: BPlusTree::new(), subtrees: Default::default(), len: 0 }
    }

    /// Load a layer-1 tree from its handle.
    fn load_subtree(&self, w: &mut Worker<'_>, handle: VAddr) -> BPlusTree {
        let root = w.read_u64(handle);
        let len = self.subtrees.get(&handle).copied().unwrap_or(0);
        BPlusTree::from_raw(root, len)
    }

    /// Store a layer-1 tree back into its handle.
    fn store_subtree(&mut self, w: &mut Worker<'_>, handle: VAddr, tree: &BPlusTree) {
        w.write_u64(handle, tree.raw_root());
        self.subtrees.insert(handle, tree.len());
    }
}

impl Default for Masstree {
    fn default() -> Self {
        Self::new()
    }
}

impl Index for Masstree {
    fn kind(&self) -> IndexKind {
        IndexKind::Masstree
    }

    fn insert(&mut self, w: &mut Worker<'_>, heap: &mut SimHeap, key: u64, value: u64) {
        let handle = match self.layer0.get(w, high(key)) {
            Some(h) => h,
            None => {
                let h = heap.alloc(w, HANDLE_BYTES);
                w.write_u64(h, 0);
                w.write_u64(h + 8, 0);
                self.layer0.insert(w, heap, high(key), h);
                h
            }
        };
        let mut sub = self.load_subtree(w, handle);
        let before = sub.len();
        sub.insert(w, heap, low(key), value);
        if sub.len() > before {
            self.len += 1;
        }
        self.store_subtree(w, handle, &sub);
    }

    fn get(&self, w: &mut Worker<'_>, key: u64) -> Option<u64> {
        let handle = self.layer0.get(w, high(key))?;
        let sub = self.load_subtree(w, handle);
        sub.get(w, low(key))
    }

    fn len(&self) -> u64 {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::with_heap;

    #[test]
    fn keys_sharing_a_high_slice_share_a_subtree() {
        with_heap(|w, heap| {
            let mut m = Masstree::new();
            for i in 0..100u64 {
                m.insert(w, heap, (7 << 32) | i, i);
            }
            // One layer-0 entry, one subtree.
            assert_eq!(m.layer0.len(), 1);
            assert_eq!(m.subtrees.len(), 1);
            assert_eq!(m.len(), 100);
            for i in 0..100u64 {
                assert_eq!(m.get(w, (7 << 32) | i), Some(i));
            }
        });
    }

    #[test]
    fn distinct_high_slices_get_distinct_subtrees() {
        with_heap(|w, heap| {
            let mut m = Masstree::new();
            for hi in 0..50u64 {
                m.insert(w, heap, hi << 32, hi);
            }
            assert_eq!(m.layer0.len(), 50);
            assert_eq!(m.subtrees.len(), 50);
        });
    }

    #[test]
    fn low_slice_collisions_across_high_slices_do_not_clash() {
        with_heap(|w, heap| {
            let mut m = Masstree::new();
            m.insert(w, heap, (1 << 32) | 5, 100);
            m.insert(w, heap, (2 << 32) | 5, 200);
            assert_eq!(m.get(w, (1 << 32) | 5), Some(100));
            assert_eq!(m.get(w, (2 << 32) | 5), Some(200));
        });
    }
}
