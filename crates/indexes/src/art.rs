//! An Adaptive Radix Tree (ART) over simulated memory.
//!
//! Fixed 8-byte keys are consumed one big-endian byte per level. Inner
//! nodes adapt among four layouts (Node4/16/48/256) and grow in place
//! (well, by reallocation) as they fill — the "variable node sizes"
//! that make ART exercise more allocator size classes than any other
//! index in W4 (§IV-D3). Leaves are 16-byte `[key, value]` allocations
//! referenced by tagged pointers, giving lazy expansion: a leaf sits as
//! high in the tree as its key prefix is unique, so chains of
//! single-child nodes only appear where keys genuinely collide.

use crate::{Index, IndexKind};
use nqp_sim::{VAddr, Worker};
use nqp_storage::SimHeap;

/// Node type tags.
const T4: u8 = 0;
const T16: u8 = 1;
const T48: u8 = 2;
const T256: u8 = 3;

/// Allocation sizes per node type.
const BYTES4: u64 = 40; // hdr 4 + keys 4 + children 4*8
const BYTES16: u64 = 152; // hdr 4 + keys 16 + pad + children 16*8
const BYTES48: u64 = 648; // hdr 4 + index 256 + pad + children 48*8
const BYTES256: u64 = 2056; // hdr 8 + children 256*8

/// Child-array offsets per node type.
const CH4: u64 = 8;
const CH16: u64 = 24;
const CH48: u64 = 264;
const CH256: u64 = 8;

/// Empty slot marker in a Node48 index array.
const EMPTY48: u8 = 0xFF;

/// Leaf pointers are tagged in bit 0 (all allocations are even).
fn tag_leaf(addr: VAddr) -> VAddr {
    addr | 1
}

fn is_leaf(ptr: VAddr) -> bool {
    ptr & 1 == 1
}

fn untag(ptr: VAddr) -> VAddr {
    ptr & !1
}

/// Big-endian byte `depth` of a key.
#[inline]
fn key_byte(key: u64, depth: usize) -> u8 {
    (key >> (56 - 8 * depth)) as u8
}

/// See module docs.
#[derive(Debug)]
pub struct Art {
    root: VAddr,
    len: u64,
}

impl Art {
    /// An empty tree.
    pub fn new() -> Self {
        Art { root: 0, len: 0 }
    }

    fn node_type(w: &mut Worker<'_>, node: VAddr) -> u8 {
        w.read_u8(node)
    }

    fn count(w: &mut Worker<'_>, node: VAddr) -> usize {
        w.read_u8(node + 1) as usize
    }

    fn set_count(w: &mut Worker<'_>, node: VAddr, count: usize) {
        w.write_u8(node + 1, count as u8);
    }

    fn new_leaf(w: &mut Worker<'_>, heap: &mut SimHeap, key: u64, value: u64) -> VAddr {
        let leaf = heap.alloc(w, 16);
        debug_assert_eq!(leaf & 1, 0, "allocations must be even for tagging");
        w.write_u64(leaf, key);
        w.write_u64(leaf + 8, value);
        tag_leaf(leaf)
    }

    fn new_node4(w: &mut Worker<'_>, heap: &mut SimHeap) -> VAddr {
        let node = heap.alloc(w, BYTES4);
        w.write_u8(node, T4);
        Self::set_count(w, node, 0);
        node
    }

    /// Find the child pointer for `byte`, or 0.
    fn find_child(w: &mut Worker<'_>, node: VAddr, byte: u8) -> VAddr {
        match Self::node_type(w, node) {
            T4 => {
                let count = Self::count(w, node);
                for i in 0..count {
                    if w.read_u8(node + 4 + i as u64) == byte {
                        return w.read_u64(node + CH4 + i as u64 * 8);
                    }
                }
                0
            }
            T16 => {
                let count = Self::count(w, node);
                for i in 0..count {
                    if w.read_u8(node + 4 + i as u64) == byte {
                        return w.read_u64(node + CH16 + i as u64 * 8);
                    }
                }
                0
            }
            T48 => {
                let idx = w.read_u8(node + 4 + byte as u64);
                if idx == EMPTY48 {
                    0
                } else {
                    w.read_u64(node + CH48 + idx as u64 * 8)
                }
            }
            _ => w.read_u64(node + CH256 + byte as u64 * 8),
        }
    }

    /// Overwrite the existing child slot for `byte` (must exist).
    fn replace_child(w: &mut Worker<'_>, node: VAddr, byte: u8, child: VAddr) {
        match Self::node_type(w, node) {
            T4 => {
                let count = Self::count(w, node);
                for i in 0..count {
                    if w.read_u8(node + 4 + i as u64) == byte {
                        w.write_u64(node + CH4 + i as u64 * 8, child);
                        return;
                    }
                }
                unreachable!("replace_child: byte {byte} absent from Node4");
            }
            T16 => {
                let count = Self::count(w, node);
                for i in 0..count {
                    if w.read_u8(node + 4 + i as u64) == byte {
                        w.write_u64(node + CH16 + i as u64 * 8, child);
                        return;
                    }
                }
                unreachable!("replace_child: byte {byte} absent from Node16");
            }
            T48 => {
                let idx = w.read_u8(node + 4 + byte as u64);
                debug_assert_ne!(idx, EMPTY48);
                w.write_u64(node + CH48 + idx as u64 * 8, child);
            }
            _ => w.write_u64(node + CH256 + byte as u64 * 8, child),
        }
    }

    /// Add a new child, growing the node if necessary. Returns the
    /// (possibly new) node address.
    fn add_child(
        w: &mut Worker<'_>,
        heap: &mut SimHeap,
        node: VAddr,
        byte: u8,
        child: VAddr,
    ) -> VAddr {
        match Self::node_type(w, node) {
            T4 => {
                let count = Self::count(w, node);
                if count < 4 {
                    w.write_u8(node + 4 + count as u64, byte);
                    w.write_u64(node + CH4 + count as u64 * 8, child);
                    Self::set_count(w, node, count + 1);
                    return node;
                }
                // Grow 4 -> 16.
                let grown = heap.alloc(w, BYTES16);
                w.write_u8(grown, T16);
                Self::set_count(w, grown, count);
                for i in 0..count {
                    let k = w.read_u8(node + 4 + i as u64);
                    let c = w.read_u64(node + CH4 + i as u64 * 8);
                    w.write_u8(grown + 4 + i as u64, k);
                    w.write_u64(grown + CH16 + i as u64 * 8, c);
                }
                heap.free(w, node, BYTES4);
                Self::add_child(w, heap, grown, byte, child)
            }
            T16 => {
                let count = Self::count(w, node);
                if count < 16 {
                    w.write_u8(node + 4 + count as u64, byte);
                    w.write_u64(node + CH16 + count as u64 * 8, child);
                    Self::set_count(w, node, count + 1);
                    return node;
                }
                // Grow 16 -> 48.
                let grown = heap.alloc(w, BYTES48);
                w.write_u8(grown, T48);
                Self::set_count(w, grown, count);
                for b in 0..=255u64 {
                    w.write_u8(grown + 4 + b, EMPTY48);
                }
                for i in 0..count {
                    let k = w.read_u8(node + 4 + i as u64);
                    let c = w.read_u64(node + CH16 + i as u64 * 8);
                    w.write_u8(grown + 4 + k as u64, i as u8);
                    w.write_u64(grown + CH48 + i as u64 * 8, c);
                }
                heap.free(w, node, BYTES16);
                Self::add_child(w, heap, grown, byte, child)
            }
            T48 => {
                let count = Self::count(w, node);
                if count < 48 {
                    w.write_u8(node + 4 + byte as u64, count as u8);
                    w.write_u64(node + CH48 + count as u64 * 8, child);
                    Self::set_count(w, node, count + 1);
                    return node;
                }
                // Grow 48 -> 256.
                let grown = heap.alloc(w, BYTES256);
                w.write_u8(grown, T256);
                Self::set_count(w, grown, count);
                for b in 0..=255u64 {
                    w.write_u64(grown + CH256 + b * 8, 0);
                }
                for b in 0..=255u64 {
                    let idx = w.read_u8(node + 4 + b);
                    if idx != EMPTY48 {
                        let c = w.read_u64(node + CH48 + idx as u64 * 8);
                        w.write_u64(grown + CH256 + b * 8, c);
                    }
                }
                heap.free(w, node, BYTES48);
                Self::add_child(w, heap, grown, byte, child)
            }
            _ => {
                let count = Self::count(w, node);
                w.write_u64(node + CH256 + byte as u64 * 8, child);
                Self::set_count(w, node, (count + 1).min(255));
                node
            }
        }
    }

    /// Split a leaf collision at `depth`: both keys share bytes up to
    /// some deeper level; build the Node4 chain covering the shared
    /// suffix and hang both leaves off the diverging byte.
    fn split_leaves(
        w: &mut Worker<'_>,
        heap: &mut SimHeap,
        existing_leaf: VAddr,
        existing_key: u64,
        key: u64,
        value: u64,
        mut depth: usize,
    ) -> VAddr {
        let top = Self::new_node4(w, heap);
        let mut cur = top;
        while key_byte(existing_key, depth) == key_byte(key, depth) {
            debug_assert!(depth < 7, "identical keys reached the last byte");
            let inner = Self::new_node4(w, heap);
            let updated = Self::add_child(w, heap, cur, key_byte(key, depth), inner);
            debug_assert_eq!(updated, cur, "fresh Node4 cannot grow");
            cur = inner;
            depth += 1;
        }
        let new_leaf = Self::new_leaf(w, heap, key, value);
        Self::add_child(w, heap, cur, key_byte(existing_key, depth), existing_leaf);
        Self::add_child(w, heap, cur, key_byte(key, depth), new_leaf);
        top
    }
}

impl Default for Art {
    fn default() -> Self {
        Self::new()
    }
}

impl Index for Art {
    fn kind(&self) -> IndexKind {
        IndexKind::Art
    }

    fn insert(&mut self, w: &mut Worker<'_>, heap: &mut SimHeap, key: u64, value: u64) {
        if self.root == 0 {
            self.root = Self::new_leaf(w, heap, key, value);
            self.len = 1;
            return;
        }
        if is_leaf(self.root) {
            let existing = untag(self.root);
            let existing_key = w.read_u64(existing);
            if existing_key == key {
                w.write_u64(existing + 8, value);
                return;
            }
            self.root =
                Self::split_leaves(w, heap, self.root, existing_key, key, value, 0);
            self.len += 1;
            return;
        }
        // Iterative descent over internal nodes, tracking the parent so
        // in-place growth can be linked back.
        let mut parent: Option<(VAddr, u8)> = None;
        let mut node = self.root;
        let mut depth = 0usize;
        loop {
            let byte = key_byte(key, depth);
            let child = Self::find_child(w, node, byte);
            if child == 0 {
                let leaf = Self::new_leaf(w, heap, key, value);
                let updated = Self::add_child(w, heap, node, byte, leaf);
                if updated != node {
                    match parent {
                        Some((p, pb)) => Self::replace_child(w, p, pb, updated),
                        None => self.root = updated,
                    }
                }
                self.len += 1;
                return;
            }
            if is_leaf(child) {
                let existing = untag(child);
                let existing_key = w.read_u64(existing);
                if existing_key == key {
                    w.write_u64(existing + 8, value);
                    return;
                }
                let sub = Self::split_leaves(
                    w, heap, child, existing_key, key, value, depth + 1,
                );
                Self::replace_child(w, node, byte, sub);
                self.len += 1;
                return;
            }
            parent = Some((node, byte));
            node = child;
            depth += 1;
        }
    }

    fn get(&self, w: &mut Worker<'_>, key: u64) -> Option<u64> {
        if self.root == 0 {
            return None;
        }
        let mut node = self.root;
        let mut depth = 0usize;
        loop {
            if is_leaf(node) {
                let leaf = untag(node);
                return if w.read_u64(leaf) == key {
                    Some(w.read_u64(leaf + 8))
                } else {
                    None
                };
            }
            let child = Self::find_child(w, node, key_byte(key, depth));
            if child == 0 {
                return None;
            }
            node = child;
            depth += 1;
        }
    }

    fn len(&self) -> u64 {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::with_heap;

    #[test]
    fn node_growth_through_all_four_layouts() {
        with_heap(|w, heap| {
            let mut art = Art::new();
            // 300 keys differing only in the last byte-pair force one
            // node to pass 4 -> 16 -> 48 -> 256.
            for i in 0..300u64 {
                art.insert(w, heap, 0xAA00 + i, i);
            }
            assert_eq!(art.len(), 300);
            for i in 0..300u64 {
                assert_eq!(art.get(w, 0xAA00 + i), Some(i), "key {i}");
            }
        });
    }

    #[test]
    fn shared_prefix_keys_build_chains() {
        with_heap(|w, heap| {
            let mut art = Art::new();
            // Diverge only in the lowest byte: seven shared levels.
            art.insert(w, heap, 0x0102_0304_0506_0701, 1);
            art.insert(w, heap, 0x0102_0304_0506_0702, 2);
            assert_eq!(art.get(w, 0x0102_0304_0506_0701), Some(1));
            assert_eq!(art.get(w, 0x0102_0304_0506_0702), Some(2));
            assert_eq!(art.get(w, 0x0102_0304_0506_0703), None);
        });
    }

    #[test]
    fn lazy_expansion_keeps_sparse_keys_shallow() {
        with_heap(|w, heap| {
            let mut art = Art::new();
            // Keys that diverge in the first byte: root Node4 with leaves.
            art.insert(w, heap, 0x11_00000000000000, 1);
            art.insert(w, heap, 0x22_00000000000000, 2);
            assert!(!is_leaf(art.root));
            let child = Art::find_child(w, untag(art.root), 0x11);
            assert!(is_leaf(child), "sparse key should hang as a direct leaf");
        });
    }

    #[test]
    fn dense_random_keys() {
        with_heap(|w, heap| {
            let mut art = Art::new();
            let keys: Vec<u64> = (0..2_000u64)
                .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15))
                .collect();
            for (i, &k) in keys.iter().enumerate() {
                art.insert(w, heap, k, i as u64);
            }
            for (i, &k) in keys.iter().enumerate() {
                assert_eq!(art.get(w, k), Some(i as u64));
            }
            assert_eq!(art.len(), 2_000);
        });
    }
}
