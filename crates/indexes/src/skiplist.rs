//! A canonical skip list over simulated memory.
//!
//! Node layout: `[key: u64][value: u64][height: u64][next[height]: u64]`,
//! so a node's allocation size varies with its tower height — one reason
//! the skip list's allocator profile differs from the fixed-node B+tree.
//! Tower heights are drawn deterministically (p = 1/2) from a hash of
//! the key and insertion count, so runs reproduce exactly.

use crate::{Index, IndexKind};
use nqp_sim::{VAddr, Worker};
use nqp_storage::SimHeap;

/// Maximum tower height.
const MAX_HEIGHT: usize = 16;

const OFF_KEY: u64 = 0;
const OFF_VALUE: u64 = 8;
const OFF_HEIGHT: u64 = 16;
const OFF_NEXT: u64 = 24;

/// See module docs.
#[derive(Debug)]
pub struct SkipList {
    /// Head tower: `MAX_HEIGHT` next pointers (no key).
    head: VAddr,
    len: u64,
}

fn node_bytes(height: usize) -> u64 {
    OFF_NEXT + height as u64 * 8
}

/// Deterministic height: count trailing ones of a mixed hash (p = 1/2).
fn tower_height(key: u64, salt: u64) -> usize {
    let mut x = key ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    ((x.trailing_ones() as usize) + 1).min(MAX_HEIGHT)
}

impl SkipList {
    /// An empty skip list (head allocated lazily).
    pub fn new() -> Self {
        SkipList { head: 0, len: 0 }
    }

    fn next_of(w: &mut Worker<'_>, node: VAddr, level: usize) -> VAddr {
        w.read_u64(node + OFF_NEXT + level as u64 * 8)
    }

    fn set_next(w: &mut Worker<'_>, node: VAddr, level: usize, to: VAddr) {
        w.write_u64(node + OFF_NEXT + level as u64 * 8, to);
    }

    fn ensure_head(&mut self, w: &mut Worker<'_>, heap: &mut SimHeap) {
        if self.head == 0 {
            self.head = heap.alloc(w, node_bytes(MAX_HEIGHT));
            w.write_u64(self.head + OFF_KEY, 0);
            w.write_u64(self.head + OFF_HEIGHT, MAX_HEIGHT as u64);
            for level in 0..MAX_HEIGHT {
                Self::set_next(w, self.head, level, 0);
            }
        }
    }

    /// Predecessors of `key` at every level.
    fn find_predecessors(
        &self,
        w: &mut Worker<'_>,
        key: u64,
    ) -> ([VAddr; MAX_HEIGHT], VAddr) {
        let mut preds = [self.head; MAX_HEIGHT];
        let mut cur = self.head;
        for level in (0..MAX_HEIGHT).rev() {
            loop {
                let next = Self::next_of(w, cur, level);
                if next == 0 || w.read_u64(next + OFF_KEY) >= key {
                    break;
                }
                cur = next;
            }
            preds[level] = cur;
        }
        let candidate = Self::next_of(w, cur, 0);
        (preds, candidate)
    }
}

impl Default for SkipList {
    fn default() -> Self {
        Self::new()
    }
}

impl Index for SkipList {
    fn kind(&self) -> IndexKind {
        IndexKind::SkipList
    }

    fn insert(&mut self, w: &mut Worker<'_>, heap: &mut SimHeap, key: u64, value: u64) {
        self.ensure_head(w, heap);
        let (preds, candidate) = self.find_predecessors(w, key);
        if candidate != 0 && w.read_u64(candidate + OFF_KEY) == key {
            w.write_u64(candidate + OFF_VALUE, value);
            return;
        }
        let height = tower_height(key, self.len);
        let node = heap.alloc(w, node_bytes(height));
        w.write_u64(node + OFF_KEY, key);
        w.write_u64(node + OFF_VALUE, value);
        w.write_u64(node + OFF_HEIGHT, height as u64);
        for level in 0..height {
            let succ = Self::next_of(w, preds[level], level);
            Self::set_next(w, node, level, succ);
            Self::set_next(w, preds[level], level, node);
        }
        self.len += 1;
    }

    fn get(&self, w: &mut Worker<'_>, key: u64) -> Option<u64> {
        if self.head == 0 {
            return None;
        }
        let (_, candidate) = self.find_predecessors(w, key);
        if candidate != 0 && w.read_u64(candidate + OFF_KEY) == key {
            Some(w.read_u64(candidate + OFF_VALUE))
        } else {
            None
        }
    }

    fn len(&self) -> u64 {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::with_heap;

    #[test]
    fn height_distribution_halves_per_level() {
        let heights: Vec<usize> = (0..4_000u64).map(|k| tower_height(k, k)).collect();
        let h1 = heights.iter().filter(|&&h| h == 1).count();
        let h2 = heights.iter().filter(|&&h| h == 2).count();
        let h3 = heights.iter().filter(|&&h| h >= 3).count();
        assert!(h1 > 1_700 && h1 < 2_300, "h1={h1}");
        assert!(h2 > 800 && h2 < 1_200, "h2={h2}");
        assert!(h3 > 700 && h3 < 1_300, "h3={h3}");
        assert!(heights.iter().all(|&h| h <= MAX_HEIGHT));
    }

    #[test]
    fn bottom_level_is_sorted() {
        with_heap(|w, heap| {
            let mut s = SkipList::new();
            for i in 0..500u64 {
                s.insert(w, heap, (i * 6151) % 500, i);
            }
            let mut cur = SkipList::next_of(w, s.head, 0);
            let mut last = None;
            let mut seen = 0;
            while cur != 0 {
                let k = w.read_u64(cur + OFF_KEY);
                assert!(last.map_or(true, |l| l < k), "unsorted at key {k}");
                last = Some(k);
                seen += 1;
                cur = SkipList::next_of(w, cur, 0);
            }
            assert_eq!(seen, 500);
        });
    }

    #[test]
    fn tall_towers_skip_correctly() {
        with_heap(|w, heap| {
            let mut s = SkipList::new();
            for i in 0..1_000u64 {
                s.insert(w, heap, i * 2, i);
            }
            // Lookups between keys miss; exact keys hit.
            assert_eq!(s.get(w, 500), Some(250));
            assert_eq!(s.get(w, 501), None);
            assert_eq!(s.get(w, 0), Some(0));
            assert_eq!(s.get(w, 1_998), Some(999));
        });
    }
}
