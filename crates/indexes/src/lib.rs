//! The four in-memory indexes of workload W4 (§IV-B), built over the
//! simulated heap so that node layout, allocation-size variety, and
//! traversal locality all flow through the NUMA cost model:
//!
//! * [`BPlusTree`] — a cache-conscious B+tree with 256-byte nodes (the
//!   STX-style baseline).
//! * [`SkipList`] — a canonical skip list with probabilistic towers.
//! * [`Art`] — an Adaptive Radix Tree with Node4/16/48/256 and lazy leaf
//!   expansion; its varied node sizes exercise many allocator size
//!   classes, the property §IV-D3 credits for its allocator sensitivity.
//! * [`Masstree`] — a trie of B+trees: a 32-bit-slice layer-0 tree whose
//!   values anchor layer-1 trees over the low 32 bits.
//!
//! All four implement [`Index`] over `u64 → u64` and are exercised by
//! the same model-based test suite.

mod art;
mod btree;
mod masstree;
mod skiplist;

pub use art::Art;
pub use btree::BPlusTree;
pub use masstree::Masstree;
pub use skiplist::SkipList;

use nqp_sim::Worker;
use nqp_storage::SimHeap;

/// Which index structure to use (the W4 sweep of Figure 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IndexKind {
    /// Adaptive Radix Tree.
    Art,
    /// Masstree-style trie of B+trees.
    Masstree,
    /// Cache-conscious B+tree.
    BPlusTree,
    /// Skip list.
    SkipList,
}

impl IndexKind {
    /// The four indexes in Figure 7 order.
    pub const ALL: [IndexKind; 4] =
        [IndexKind::Art, IndexKind::Masstree, IndexKind::BPlusTree, IndexKind::SkipList];

    /// Label used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            IndexKind::Art => "ART",
            IndexKind::Masstree => "Masstree",
            IndexKind::BPlusTree => "B+tree",
            IndexKind::SkipList => "Skip List",
        }
    }
}

/// A `u64 → u64` ordered index in simulated memory.
///
/// `Send + Sync` is required so probe phases can share a built index
/// read-only across sharded host threads; implementors are plain
/// simulated-heap handles (addresses and counters), so the bounds are
/// structural, not a concurrency claim about `insert`.
pub trait Index: Send + Sync {
    /// Which structure this is.
    fn kind(&self) -> IndexKind;

    /// Insert or update a key.
    fn insert(&mut self, w: &mut Worker<'_>, heap: &mut SimHeap, key: u64, value: u64);

    /// Point lookup.
    fn get(&self, w: &mut Worker<'_>, key: u64) -> Option<u64>;

    /// Number of distinct keys.
    fn len(&self) -> u64;

    /// Whether the index holds no keys.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Construct an empty index of the given kind.
pub fn build_index(kind: IndexKind) -> Box<dyn Index> {
    match kind {
        IndexKind::Art => Box::new(Art::new()),
        IndexKind::Masstree => Box::new(Masstree::new()),
        IndexKind::BPlusTree => Box::new(BPlusTree::new()),
        IndexKind::SkipList => Box::new(SkipList::new()),
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use nqp_alloc::AllocatorKind;
    use nqp_sim::{NumaSim, SimConfig, ThreadPlacement};
    use nqp_topology::machines;

    /// Run `f` with a quiet simulator and a tbbmalloc-backed heap.
    pub fn with_heap(f: impl FnMut(&mut Worker<'_>, &mut SimHeap)) {
        let mut sim = NumaSim::new(
            SimConfig::os_default(machines::machine_b())
                .with_threads(ThreadPlacement::Sparse)
                .with_autonuma(false)
                .with_thp(false),
        );
        let mut heap = SimHeap::new(AllocatorKind::Tbbmalloc, &mut sim);
        sim.serial(&mut heap, f);
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::with_heap;
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    use std::collections::BTreeMap;

    #[test]
    fn model_based_random_ops_match_btreemap() {
        for kind in IndexKind::ALL {
            with_heap(|w, heap| {
                let mut index = build_index(kind);
                let mut model = BTreeMap::new();
                let mut rng = StdRng::seed_from_u64(77);
                for _ in 0..2_000 {
                    let key = rng.random_range(0..500u64);
                    if rng.random::<bool>() {
                        let value = rng.random::<u64>();
                        index.insert(w, heap, key, value);
                        model.insert(key, value);
                    } else {
                        assert_eq!(
                            index.get(w, key),
                            model.get(&key).copied(),
                            "{kind:?} diverged on key {key}"
                        );
                    }
                }
                assert_eq!(index.len(), model.len() as u64, "{kind:?} length");
                for (&k, &v) in &model {
                    assert_eq!(index.get(w, k), Some(v), "{kind:?} lost key {k}");
                }
            });
        }
    }

    #[test]
    fn extreme_keys_round_trip() {
        for kind in IndexKind::ALL {
            with_heap(|w, heap| {
                let mut index = build_index(kind);
                for key in [0u64, 1, u64::MAX, u64::MAX - 1, 1 << 63, 0xdead_beef] {
                    index.insert(w, heap, key, !key);
                }
                for key in [0u64, 1, u64::MAX, u64::MAX - 1, 1 << 63, 0xdead_beef] {
                    assert_eq!(index.get(w, key), Some(!key), "{kind:?} key {key:#x}");
                }
                assert_eq!(index.get(w, 2), None);
            });
        }
    }

    #[test]
    fn updates_overwrite() {
        for kind in IndexKind::ALL {
            with_heap(|w, heap| {
                let mut index = build_index(kind);
                index.insert(w, heap, 7, 1);
                index.insert(w, heap, 7, 2);
                assert_eq!(index.get(w, 7), Some(2), "{kind:?}");
                assert_eq!(index.len(), 1, "{kind:?}");
            });
        }
    }

    #[test]
    fn empty_index_finds_nothing() {
        for kind in IndexKind::ALL {
            with_heap(|w, _| {
                let index = build_index(kind);
                assert!(index.is_empty());
                assert_eq!(index.get(w, 1), None, "{kind:?}");
            });
        }
    }

    #[test]
    fn dense_sequential_bulk_load() {
        for kind in IndexKind::ALL {
            with_heap(|w, heap| {
                let mut index = build_index(kind);
                for key in 0..3_000u64 {
                    index.insert(w, heap, key, key * 2);
                }
                assert_eq!(index.len(), 3_000);
                for key in (0..3_000u64).step_by(97) {
                    assert_eq!(index.get(w, key), Some(key * 2), "{kind:?} key {key}");
                }
            });
        }
    }

    #[test]
    fn labels_are_figure7_names() {
        assert_eq!(IndexKind::Art.label(), "ART");
        assert_eq!(IndexKind::Masstree.label(), "Masstree");
        assert_eq!(IndexKind::BPlusTree.label(), "B+tree");
        assert_eq!(IndexKind::SkipList.label(), "Skip List");
    }
}
