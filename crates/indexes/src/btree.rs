//! A cache-conscious B+tree over simulated memory.
//!
//! Nodes are 264 bytes (~4 cache lines), in the spirit of the STX B+tree
//! the paper evaluates: small enough that a node's key scan stays in a
//! few lines, large enough that the tree is shallow.
//!
//! Node layout (both kinds):
//! ```text
//! off 0   u8   is_leaf
//! off 1   u8   count
//! off 8   u64  next leaf (leaves only)
//! off 16  u64  keys[15]
//! off 136      leaves: values[15]   |   inners: children[16]
//! ```

use crate::{Index, IndexKind};
use nqp_sim::{VAddr, Worker};
use nqp_storage::SimHeap;

/// Keys per node.
const CAP: usize = 15;
/// Node allocation size (inner nodes need 136 + 16*8 = 264).
const NODE_BYTES: u64 = 264;

const OFF_IS_LEAF: u64 = 0;
const OFF_COUNT: u64 = 1;
const OFF_NEXT: u64 = 8;
const OFF_KEYS: u64 = 16;
const OFF_PAYLOAD: u64 = 136;

/// See module docs.
#[derive(Debug)]
pub struct BPlusTree {
    root: VAddr,
    len: u64,
}

enum Outcome {
    /// Insert finished; `true` when a new key was added.
    Done(bool),
    /// The child split: push `sep` and the new right sibling up.
    Split { added: bool, sep: u64, right: VAddr },
}

impl BPlusTree {
    /// An empty tree (the root leaf is allocated lazily on first insert).
    pub fn new() -> Self {
        BPlusTree { root: 0, len: 0 }
    }

    /// Rebuild a handle from a stored root pointer and key count — used
    /// by Masstree, whose layer-1 roots live in simulated memory.
    pub(crate) fn from_raw(root: VAddr, len: u64) -> Self {
        BPlusTree { root, len }
    }

    /// The root pointer to store (0 while empty).
    pub(crate) fn raw_root(&self) -> VAddr {
        self.root
    }

    fn new_node(w: &mut Worker<'_>, heap: &mut SimHeap, is_leaf: bool) -> VAddr {
        let node = heap.alloc(w, NODE_BYTES);
        w.write_u8(node + OFF_IS_LEAF, is_leaf as u8);
        w.write_u8(node + OFF_COUNT, 0);
        w.write_u64(node + OFF_NEXT, 0);
        node
    }

    fn key_at(w: &mut Worker<'_>, node: VAddr, i: usize) -> u64 {
        w.read_u64(node + OFF_KEYS + i as u64 * 8)
    }

    fn set_key(w: &mut Worker<'_>, node: VAddr, i: usize, key: u64) {
        w.write_u64(node + OFF_KEYS + i as u64 * 8, key);
    }

    fn payload_at(w: &mut Worker<'_>, node: VAddr, i: usize) -> u64 {
        w.read_u64(node + OFF_PAYLOAD + i as u64 * 8)
    }

    fn set_payload(w: &mut Worker<'_>, node: VAddr, i: usize, value: u64) {
        w.write_u64(node + OFF_PAYLOAD + i as u64 * 8, value);
    }

    fn count(w: &mut Worker<'_>, node: VAddr) -> usize {
        w.read_u8(node + OFF_COUNT) as usize
    }

    fn set_count(w: &mut Worker<'_>, node: VAddr, count: usize) {
        w.write_u8(node + OFF_COUNT, count as u8);
    }

    fn is_leaf(w: &mut Worker<'_>, node: VAddr) -> bool {
        w.read_u8(node + OFF_IS_LEAF) != 0
    }

    /// First index whose key is >= `key` (linear scan: within-node keys
    /// share cache lines, which is the point of the layout).
    fn lower_bound(w: &mut Worker<'_>, node: VAddr, count: usize, key: u64) -> usize {
        let mut i = 0;
        while i < count && Self::key_at(w, node, i) < key {
            i += 1;
        }
        i
    }

    fn insert_rec(
        w: &mut Worker<'_>,
        heap: &mut SimHeap,
        node: VAddr,
        key: u64,
        value: u64,
    ) -> Outcome {
        let count = Self::count(w, node);
        if Self::is_leaf(w, node) {
            let pos = Self::lower_bound(w, node, count, key);
            if pos < count && Self::key_at(w, node, pos) == key {
                Self::set_payload(w, node, pos, value);
                return Outcome::Done(false);
            }
            if count < CAP {
                // Shift right and insert.
                for i in (pos..count).rev() {
                    let k = Self::key_at(w, node, i);
                    let v = Self::payload_at(w, node, i);
                    Self::set_key(w, node, i + 1, k);
                    Self::set_payload(w, node, i + 1, v);
                }
                Self::set_key(w, node, pos, key);
                Self::set_payload(w, node, pos, value);
                Self::set_count(w, node, count + 1);
                return Outcome::Done(true);
            }
            // Split the leaf, then insert into the proper half.
            let right = Self::new_node(w, heap, true);
            let half = count / 2;
            for i in half..count {
                let k = Self::key_at(w, node, i);
                let v = Self::payload_at(w, node, i);
                Self::set_key(w, right, i - half, k);
                Self::set_payload(w, right, i - half, v);
            }
            Self::set_count(w, right, count - half);
            Self::set_count(w, node, half);
            let next = w.read_u64(node + OFF_NEXT);
            w.write_u64(right + OFF_NEXT, next);
            w.write_u64(node + OFF_NEXT, right);
            let sep = Self::key_at(w, right, 0);
            let target = if key < sep { node } else { right };
            match Self::insert_rec(w, heap, target, key, value) {
                Outcome::Done(added) => Outcome::Split { added, sep, right },
                Outcome::Split { .. } => unreachable!("post-split leaf cannot split again"),
            }
        } else {
            let idx = {
                // Child index: first key strictly greater than `key`.
                let mut i = 0;
                while i < count && Self::key_at(w, node, i) <= key {
                    i += 1;
                }
                i
            };
            let child = Self::payload_at(w, node, idx);
            match Self::insert_rec(w, heap, child, key, value) {
                Outcome::Done(added) => Outcome::Done(added),
                Outcome::Split { added, sep, right } => {
                    if count < CAP {
                        for i in (idx..count).rev() {
                            let k = Self::key_at(w, node, i);
                            Self::set_key(w, node, i + 1, k);
                        }
                        for i in (idx + 1..=count).rev() {
                            let c = Self::payload_at(w, node, i);
                            Self::set_payload(w, node, i + 1, c);
                        }
                        Self::set_key(w, node, idx, sep);
                        Self::set_payload(w, node, idx + 1, right);
                        Self::set_count(w, node, count + 1);
                        return Outcome::Done(added);
                    }
                    // Split this inner node: middle key moves up.
                    let mid = count / 2;
                    let up = Self::key_at(w, node, mid);
                    let new_right = Self::new_node(w, heap, false);
                    let right_keys = count - mid - 1;
                    for i in 0..right_keys {
                        let k = Self::key_at(w, node, mid + 1 + i);
                        Self::set_key(w, new_right, i, k);
                    }
                    for i in 0..=right_keys {
                        let c = Self::payload_at(w, node, mid + 1 + i);
                        Self::set_payload(w, new_right, i, c);
                    }
                    Self::set_count(w, new_right, right_keys);
                    Self::set_count(w, node, mid);
                    // Re-insert the pending separator into whichever half.
                    let target = if sep < up { node } else { new_right };
                    let tcount = Self::count(w, target);
                    let tpos = Self::lower_bound(w, target, tcount, sep);
                    for i in (tpos..tcount).rev() {
                        let k = Self::key_at(w, target, i);
                        Self::set_key(w, target, i + 1, k);
                    }
                    for i in (tpos + 1..=tcount).rev() {
                        let c = Self::payload_at(w, target, i);
                        Self::set_payload(w, target, i + 1, c);
                    }
                    Self::set_key(w, target, tpos, sep);
                    Self::set_payload(w, target, tpos + 1, right);
                    Self::set_count(w, target, tcount + 1);
                    Outcome::Split { added, sep: up, right: new_right }
                }
            }
        }
    }
}

impl Default for BPlusTree {
    fn default() -> Self {
        Self::new()
    }
}

impl Index for BPlusTree {
    fn kind(&self) -> IndexKind {
        IndexKind::BPlusTree
    }

    fn insert(&mut self, w: &mut Worker<'_>, heap: &mut SimHeap, key: u64, value: u64) {
        if self.root == 0 {
            self.root = Self::new_node(w, heap, true);
        }
        match Self::insert_rec(w, heap, self.root, key, value) {
            Outcome::Done(added) => {
                if added {
                    self.len += 1;
                }
            }
            Outcome::Split { added, sep, right } => {
                let new_root = Self::new_node(w, heap, false);
                Self::set_key(w, new_root, 0, sep);
                Self::set_payload(w, new_root, 0, self.root);
                Self::set_payload(w, new_root, 1, right);
                Self::set_count(w, new_root, 1);
                self.root = new_root;
                if added {
                    self.len += 1;
                }
            }
        }
    }

    fn get(&self, w: &mut Worker<'_>, key: u64) -> Option<u64> {
        if self.root == 0 {
            return None;
        }
        let mut node = self.root;
        loop {
            let count = Self::count(w, node);
            if Self::is_leaf(w, node) {
                let pos = Self::lower_bound(w, node, count, key);
                return if pos < count && Self::key_at(w, node, pos) == key {
                    Some(Self::payload_at(w, node, pos))
                } else {
                    None
                };
            }
            let mut i = 0;
            while i < count && Self::key_at(w, node, i) <= key {
                i += 1;
            }
            node = Self::payload_at(w, node, i);
        }
    }

    fn len(&self) -> u64 {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::with_heap;

    #[test]
    fn splits_produce_a_taller_tree() {
        with_heap(|w, heap| {
            let mut t = BPlusTree::new();
            for key in 0..200u64 {
                t.insert(w, heap, key, key);
            }
            assert_eq!(t.len(), 200);
            // Root must no longer be a leaf.
            assert!(!BPlusTree::is_leaf(w, t.root));
            for key in 0..200u64 {
                assert_eq!(t.get(w, key), Some(key));
            }
        });
    }

    #[test]
    fn reverse_insertion_order_works() {
        with_heap(|w, heap| {
            let mut t = BPlusTree::new();
            for key in (0..500u64).rev() {
                t.insert(w, heap, key, key + 1);
            }
            for key in 0..500u64 {
                assert_eq!(t.get(w, key), Some(key + 1));
            }
        });
    }

    #[test]
    fn leaf_chain_stays_sorted() {
        with_heap(|w, heap| {
            let mut t = BPlusTree::new();
            // Insert in scrambled order.
            for i in 0..300u64 {
                t.insert(w, heap, (i * 7919) % 300, i);
            }
            // Walk to the leftmost leaf, then follow next pointers.
            let mut node = t.root;
            while !BPlusTree::is_leaf(w, node) {
                node = BPlusTree::payload_at(w, node, 0);
            }
            let mut last = None;
            let mut seen = 0;
            while node != 0 {
                let count = BPlusTree::count(w, node);
                for i in 0..count {
                    let k = BPlusTree::key_at(w, node, i);
                    assert!(last.map_or(true, |l| l < k), "unsorted leaf chain");
                    last = Some(k);
                    seen += 1;
                }
                node = w.read_u64(node + OFF_NEXT);
            }
            assert_eq!(seen, 300);
        });
    }
}
