//! Exporters: Chrome `trace_event` JSON, a CSV counter timeline, and
//! the `perf stat`-style Table III report. All output is deterministic
//! (integer timestamps in model cycles; fixed field order; fixed-point
//! ratio formatting).

use crate::artifact::Trace;
use nqp_sim::{Counters, TraceEvent, NO_TID};

impl Trace {
    /// Chrome `trace_event` JSON (the `{"traceEvents": [...]}` object
    /// form), loadable in `chrome://tracing` and Perfetto.
    ///
    /// Layout: one process per trace; track 0 is the simulator timeline
    /// (phase spans as `X` duration events, region/offline events),
    /// tracks `1..=threads` carry per-thread instants (faults,
    /// migrations, lock waits), and `C` counter events plot the epoch
    /// series (DRAM locality, TLB misses, migrations) over model time.
    /// Timestamps are model cycles reported in the `ts` microsecond
    /// field — absolute units don't matter to the viewers, ordering and
    /// durations do.
    #[must_use]
    pub fn to_chrome_json(&self) -> String {
        let mut ev: Vec<String> = Vec::new();
        let pname = format!(
            "{} · trial {} · machine {} · {} threads",
            self.meta.label, self.meta.trial, self.meta.machine, self.meta.threads
        );
        ev.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{{\"name\":\"{}\"}}}}",
            esc_json(&pname)
        ));
        ev.push(
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
             \"args\":{\"name\":\"simulator\"}}"
                .to_string(),
        );
        for t in 0..self.meta.threads {
            ev.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{},\
                 \"args\":{{\"name\":\"thread {t}\"}}}}",
                t + 1
            ));
        }
        // Spans are recorded in close order; emit sorted by (begin,
        // -depth) so outer spans open before the phases they contain.
        let mut spans: Vec<_> = self.spans.iter().collect();
        spans.sort_by_key(|s| (s.begin_cycles, u32::MAX - s.depth, s.end_cycles));
        for s in spans {
            ev.push(format!(
                "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":0}}",
                esc_json(&s.name),
                s.begin_cycles,
                s.end_cycles - s.begin_cycles
            ));
        }
        for r in &self.events {
            let tid = if r.tid == NO_TID { 0 } else { r.tid as u64 + 1 };
            let (name, args) = chrome_event(&r.event);
            ev.push(format!(
                "{{\"name\":\"{name}\",\"ph\":\"i\",\"ts\":{},\"pid\":0,\"tid\":{tid},\
                 \"s\":\"t\",\"args\":{{{args}}}}}",
                r.at
            ));
        }
        for s in &self.samples {
            let c = &s.counters;
            let ts = s.end_cycles;
            ev.push(format!(
                "{{\"name\":\"dram locality\",\"ph\":\"C\",\"ts\":{ts},\"pid\":0,\
                 \"args\":{{\"local\":{},\"remote\":{}}}}}",
                c.local_accesses, c.remote_accesses
            ));
            ev.push(format!(
                "{{\"name\":\"tlb misses\",\"ph\":\"C\",\"ts\":{ts},\"pid\":0,\
                 \"args\":{{\"4k\":{},\"2m\":{}}}}}",
                c.tlb_misses_4k, c.tlb_misses_2m
            ));
            ev.push(format!(
                "{{\"name\":\"migrations\",\"ph\":\"C\",\"ts\":{ts},\"pid\":0,\
                 \"args\":{{\"thread\":{},\"page\":{}}}}}",
                c.thread_migrations, c.page_migrations
            ));
            ev.push(format!(
                "{{\"name\":\"cycles\",\"ph\":\"C\",\"ts\":{ts},\"pid\":0,\
                 \"args\":{{\"compute\":{},\"dram\":{},\"kernel\":{},\"lock\":{}}}}}",
                c.compute_cycles, c.dram_cycles, c.kernel_cycles, c.lock_wait_cycles
            ));
        }
        format!("{{\"traceEvents\":[\n{}\n]}}\n", ev.join(",\n"))
    }

    /// The epoch counter time-series as CSV: one row per sample, all
    /// counter fields in declaration order, node/link line vectors as
    /// `;`-joined columns.
    #[must_use]
    pub fn to_timeline_csv(&self) -> String {
        let mut out = String::from("epoch,start_cycles,end_cycles");
        for (name, _) in Counters::default().fields() {
            out.push(',');
            out.push_str(name);
        }
        out.push_str(",node_lines,link_lines\n");
        for s in &self.samples {
            out.push_str(&format!("{},{},{}", s.epoch, s.start_cycles, s.end_cycles));
            for (_, v) in s.counters.fields() {
                out.push_str(&format!(",{v}"));
            }
            out.push_str(&format!(
                ",{},{}\n",
                join_semi(&s.node_lines),
                join_semi(&s.link_lines)
            ));
        }
        out
    }

    /// The online-controller decision timeline as CSV: one row per
    /// `AdvisorDecision` instant event, in record order. Decision
    /// tokens are single words (no spaces or commas, by the trace
    /// format's convention), so no quoting is needed.
    #[must_use]
    pub fn to_decisions_csv(&self) -> String {
        let mut out = String::from("at_cycles,region,decision\n");
        for r in &self.events {
            if let TraceEvent::AdvisorDecision { region, decision } = &r.event {
                out.push_str(&format!("{},{region},{decision}\n", r.at));
            }
        }
        out
    }

    /// The `perf stat`-style report, computed **from the recorded
    /// time-series** (the telescoping sum of epoch samples), not from
    /// the stored totals — so the report proves the recording is
    /// complete. `tests/trace.rs` pins it byte-equal to
    /// [`counters_report`] over the live totals.
    #[must_use]
    pub fn perf_report(&self) -> String {
        let title = format!(
            "'{}' (trial {}, machine {}, {} threads)",
            self.meta.label, self.meta.trial, self.meta.machine, self.meta.threads
        );
        let mut out = counters_report(&title, self.end_cycles, &self.sampled_totals());
        if self.dropped > 0 {
            out.push_str(&format!(
                "\n        (event ring dropped {} oldest events)\n",
                self.dropped
            ));
        }
        out
    }
}

/// Format a `perf stat`-style counter report — the shape of the
/// paper's Table III — for any counter snapshot. Shared by
/// [`Trace::perf_report`] (recorded data) and callers holding live
/// `Metrics` totals, which is exactly what makes "replayed report ==
/// live report" a meaningful byte-equality test.
#[must_use]
pub fn counters_report(title: &str, elapsed_cycles: u64, c: &Counters) -> String {
    let mut out = format!("\n Performance counter stats for {title}:\n\n");
    let mut line = |v: u64, name: &str| {
        out.push_str(&format!("    {:>18}      {name}\n", thousands(v)));
    };
    line(elapsed_cycles, "cycles elapsed (model)");
    for (name, v) in c.fields() {
        line(v, &name.replace('_', "-"));
    }
    out.push_str(&format!(
        "\n    {:>18}      local-access-ratio\n",
        percent(c.local_access_ratio())
    ));
    out.push_str(&format!(
        "    {:>18}      llc-hit-ratio\n",
        percent(c.cache_hit_ratio())
    ));
    out.push_str(&format!(
        "    {:>18}      tlb-miss-ratio\n",
        percent(c.tlb_miss_ratio())
    ));
    out
}

/// `1234567` → `1,234,567` (deterministic, locale-free).
fn thousands(v: u64) -> String {
    let digits = v.to_string();
    let mut out = String::with_capacity(digits.len() + digits.len() / 3);
    for (i, ch) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(ch);
    }
    out
}

/// Fixed-point percentage, e.g. `87.32 %`.
fn percent(r: f64) -> String {
    format!("{:.2} %", r * 100.0)
}

fn esc_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Chrome instant-event name and args body for one trace event.
fn chrome_event(e: &TraceEvent) -> (&'static str, String) {
    match e {
        TraceEvent::RegionBegin { region, threads } => {
            ("region begin", format!("\"region\":{region},\"threads\":{threads}"))
        }
        TraceEvent::RegionEnd { region, elapsed_cycles } => {
            ("region end", format!("\"region\":{region},\"elapsed\":{elapsed_cycles}"))
        }
        TraceEvent::PageFault { node, pages } => {
            ("page fault", format!("\"node\":{node},\"pages\":{pages}"))
        }
        TraceEvent::ThreadMigration { from_core, to_core } => {
            ("thread migration", format!("\"from_core\":{from_core},\"to_core\":{to_core}"))
        }
        TraceEvent::Preemption { core } => ("preemption", format!("\"core\":{core}")),
        TraceEvent::PageMigration { from_node, to_node, pages } => (
            "page migration",
            format!("\"from_node\":{from_node},\"to_node\":{to_node},\"pages\":{pages}"),
        ),
        TraceEvent::PageMigrationBlocked { node } => {
            ("page migration blocked", format!("\"node\":{node}"))
        }
        TraceEvent::AllocFaultInjected { region } => {
            ("alloc fault injected", format!("\"region\":{region}"))
        }
        TraceEvent::NodeOffline { node, evacuated_pages } => {
            ("node offline", format!("\"node\":{node},\"evacuated_pages\":{evacuated_pages}"))
        }
        TraceEvent::LockContention { wait_cycles } => {
            ("lock contention", format!("\"wait_cycles\":{wait_cycles}"))
        }
        TraceEvent::DeadlineAbandon { deadline_cycles, elapsed_cycles } => (
            "deadline abandon",
            format!("\"deadline_cycles\":{deadline_cycles},\"elapsed_cycles\":{elapsed_cycles}"),
        ),
        TraceEvent::AdvisorDecision { region, decision } => (
            "advisor decision",
            format!("\"region\":{region},\"decision\":\"{}\"", esc_json(decision)),
        ),
        TraceEvent::TierDecision { region, decision } => (
            "tier decision",
            format!("\"region\":{region},\"decision\":\"{}\"", esc_json(decision)),
        ),
    }
}

fn join_semi(v: &[u64]) -> String {
    v.iter().map(|x| x.to_string()).collect::<Vec<_>>().join(";")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::{Trace, TraceMeta};
    use nqp_sim::{EpochSample, PhaseSpan, TraceRecord};

    fn tiny() -> Trace {
        let mut c = Counters::default();
        c.local_accesses = 70;
        c.remote_accesses = 30;
        c.compute_cycles = 500;
        Trace {
            meta: TraceMeta { label: "t".into(), trial: 0, machine: "A".into(), threads: 2 },
            epoch_cycles: 100,
            end_cycles: 240,
            dropped: 0,
            totals: c,
            spans: vec![PhaseSpan {
                name: "build \"x\"".into(),
                begin_cycles: 0,
                end_cycles: 240,
                depth: 0,
            }],
            samples: vec![EpochSample {
                epoch: 2,
                start_cycles: 0,
                end_cycles: 240,
                counters: c,
                node_lines: vec![5, 6],
                link_lines: vec![2],
            }],
            events: vec![TraceRecord {
                at: 7,
                tid: 1,
                event: TraceEvent::PageFault { node: 0, pages: 3 },
            }],
        }
    }

    #[test]
    fn chrome_json_is_wellformed_enough() {
        let j = tiny().to_chrome_json();
        assert!(j.starts_with("{\"traceEvents\":["));
        assert!(j.contains("\"ph\":\"X\""), "span duration event present");
        assert!(j.contains("\"ph\":\"C\""), "counter series present");
        assert!(j.contains("\\\"x\\\""), "quotes in span names escaped");
        // Balanced braces/brackets outside strings — a cheap structural
        // check that catches mismatched literal templates.
        let (mut depth, mut in_str, mut esc) = (0i64, false, false);
        for ch in j.chars() {
            if esc {
                esc = false;
                continue;
            }
            match ch {
                '\\' if in_str => esc = true,
                '"' => in_str = !in_str,
                '{' | '[' if !in_str => depth += 1,
                '}' | ']' if !in_str => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0);
        assert!(!in_str);
    }

    #[test]
    fn csv_has_all_counter_columns() {
        let csv = tiny().to_timeline_csv();
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert_eq!(
            header.split(',').count(),
            3 + Counters::FIELD_COUNT + 2,
            "epoch,start,end + counters + node/link lines"
        );
        let row = lines.next().unwrap();
        assert_eq!(row.split(',').count(), header.split(',').count());
        assert!(row.ends_with("5;6,2"));
    }

    #[test]
    fn report_formats_thousands_and_ratios() {
        let r = tiny().perf_report();
        assert!(r.contains("cycles elapsed"));
        assert!(r.contains("local-access-ratio"));
        assert!(r.contains("70.00 %"));
        assert_eq!(thousands(1_234_567), "1,234,567");
        assert_eq!(thousands(0), "0");
        assert_eq!(thousands(999), "999");
        assert_eq!(thousands(1_000), "1,000");
    }
}
