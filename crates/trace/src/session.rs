//! Per-session trace export for serve runs: one Perfetto track per
//! service lane, one `X` duration event per session, plus a queue-depth
//! counter track.
//!
//! This module is deliberately engine- and serve-agnostic: callers map
//! their own session records into [`SessionSpan`]s, so `nqp-trace`
//! stays a leaf crate (it depends only on `nqp-sim`). Output follows
//! the same determinism discipline as [`crate::artifact::Trace`]:
//! integer model-cycle timestamps, fixed field order, stable sort keys.

/// One rendered session: a span on a lane track.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionSpan {
    /// Service lane (track), or `usize::MAX` for sessions that never
    /// ran (sheds, queue-expired timeouts) — those render as instants
    /// on a dedicated "shed" track.
    pub lane: usize,
    /// Owning tenant.
    pub tenant: usize,
    /// Query-class label (e.g. `w1`).
    pub class: String,
    /// Arrival cycle (span start on the shed track; queue-wait start).
    pub arrival: u64,
    /// Dispatch cycle — span start on the lane track.
    pub start: u64,
    /// Resolution cycle — span end.
    pub end: u64,
    /// Outcome label (`completed`, `late`, `degraded`, `timeout`,
    /// `shed-*`).
    pub outcome: String,
    /// Engine cycles burned by a timed-out session.
    pub burned: u64,
}

/// Chrome `trace_event` JSON for a serve cell's sessions, loadable in
/// Perfetto. Track 0 carries shed/expired instants; tracks `1..=lanes`
/// carry session duration spans; a `C` counter track plots queue depth
/// from `depth_samples` (`(cycle, depth)` pairs, e.g. epoch gauges).
#[must_use]
pub fn sessions_to_chrome_json(
    title: &str,
    lanes: usize,
    spans: &[SessionSpan],
    depth_samples: &[(u64, u64)],
) -> String {
    let mut ev: Vec<String> = Vec::new();
    ev.push(format!(
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
         \"args\":{{\"name\":\"{}\"}}}}",
        esc(title)
    ));
    ev.push(
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
         \"args\":{\"name\":\"shed / expired\"}}"
            .to_string(),
    );
    for l in 0..lanes {
        ev.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{},\
             \"args\":{{\"name\":\"lane {l}\"}}}}",
            l + 1
        ));
    }
    let mut sorted: Vec<&SessionSpan> = spans.iter().collect();
    sorted.sort_by_key(|s| (s.start, s.end, s.tenant));
    for s in sorted {
        let name = format!("{} t{} {}", s.class, s.tenant, s.outcome);
        let args = format!(
            "\"tenant\":{},\"outcome\":\"{}\",\"queued_cycles\":{},\"burned\":{}",
            s.tenant,
            esc(&s.outcome),
            s.start.saturating_sub(s.arrival),
            s.burned
        );
        if s.lane == usize::MAX {
            ev.push(format!(
                "{{\"name\":\"{}\",\"ph\":\"i\",\"ts\":{},\"pid\":0,\"tid\":0,\
                 \"s\":\"t\",\"args\":{{{args}}}}}",
                esc(&name),
                s.end
            ));
        } else {
            ev.push(format!(
                "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\
                 \"tid\":{},\"args\":{{{args}}}}}",
                esc(&name),
                s.start,
                s.end.saturating_sub(s.start).max(1),
                s.lane + 1
            ));
        }
    }
    for &(t, depth) in depth_samples {
        ev.push(format!(
            "{{\"name\":\"queue depth\",\"ph\":\"C\",\"ts\":{t},\"pid\":0,\
             \"args\":{{\"depth\":{depth}}}}}"
        ));
    }
    format!("{{\"traceEvents\":[\n{}\n]}}\n", ev.join(",\n"))
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spans() -> Vec<SessionSpan> {
        vec![
            SessionSpan {
                lane: 0,
                tenant: 2,
                class: "w1".into(),
                arrival: 100,
                start: 150,
                end: 900,
                outcome: "completed".into(),
                burned: 0,
            },
            SessionSpan {
                lane: usize::MAX,
                tenant: 1,
                class: "w2".into(),
                arrival: 200,
                start: 200,
                end: 200,
                outcome: "shed-queue".into(),
                burned: 0,
            },
        ]
    }

    #[test]
    fn renders_lane_spans_and_shed_instants() {
        let json = sessions_to_chrome_json("serve · tuned", 2, &spans(), &[(500, 3)]);
        assert!(json.contains("\"name\":\"lane 0\""));
        assert!(json.contains("\"name\":\"w1 t2 completed\",\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"w2 t1 shed-queue\",\"ph\":\"i\""));
        assert!(json.contains("\"queued_cycles\":50"));
        assert!(json.contains("\"name\":\"queue depth\",\"ph\":\"C\",\"ts\":500"));
        // Deterministic: same input, same bytes.
        assert_eq!(json, sessions_to_chrome_json("serve · tuned", 2, &spans(), &[(500, 3)]));
    }

    #[test]
    fn output_is_structurally_balanced() {
        let json = sessions_to_chrome_json("t", 1, &spans(), &[]);
        let (mut depth, mut in_str, mut escaped) = (0i64, false, false);
        for c in json.chars() {
            if escaped {
                escaped = false;
                continue;
            }
            match c {
                '\\' if in_str => escaped = true,
                '"' => in_str = !in_str,
                '{' | '[' if !in_str => depth += 1,
                '}' | ']' if !in_str => depth -= 1,
                _ => {}
            }
        }
        assert_eq!(depth, 0);
        assert!(!in_str);
    }
}
