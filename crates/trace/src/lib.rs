#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
//! # nqp-trace — deterministic trace artifacts and exporters
//!
//! The recording half of the tracing subsystem lives in `nqp-sim`
//! (`TraceLog`: ring-buffered events, epoch-binned counter samples,
//! phase spans, all timestamped in model cycles). This crate owns the
//! *artifact*: a line-based, versioned, byte-deterministic text format
//! ([`Trace::to_text`] / [`Trace::parse`]) plus three exporters —
//!
//! * [`Trace::to_chrome_json`] — Chrome `trace_event` JSON, loadable
//!   in `chrome://tracing` or Perfetto;
//! * [`Trace::to_timeline_csv`] — the epoch counter time-series as CSV;
//! * [`Trace::perf_report`] — a `perf stat`-style text report that
//!   reproduces the Table III counter comparison from recorded data.
//! * [`sessions_to_chrome_json`] — per-session serve-mode spans (one
//!   Perfetto track per service lane plus a queue-depth counter).
//!
//! Determinism contract: artifact content is a pure function of the
//! recorded trace — no wall-clock timestamps, no hash-map iteration
//! order, no floating-point accumulation across records — so a sweep
//! cell traced under `--jobs 1`, `--jobs N`, or a resumed run writes
//! byte-identical files (DESIGN.md §"Observability").

mod artifact;
mod export;
mod session;

pub use artifact::{artifact_name, slug, Trace, TraceError, TraceMeta};
pub use export::counters_report;
pub use session::{sessions_to_chrome_json, SessionSpan};
