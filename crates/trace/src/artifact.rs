//! The `nqp-trace v1` artifact: a line-based, byte-deterministic text
//! serialisation of one recorded trial trace, and its parser.
//!
//! Why not JSON: the workspace has no serde (DESIGN.md §5) and the
//! journal's hand-rolled JSON parser is private to `nqp-core`; a tagged
//! `key=value` line format is simpler to emit deterministically, diffs
//! cleanly (the determinism gates literally `diff` artifacts), and
//! parses with `split_whitespace`.

use nqp_sim::{Counters, EpochSample, PhaseSpan, TraceEvent, TraceLog, TraceRecord, NO_TID};
use std::fmt;
use std::path::Path;

/// Identity of the sweep cell a trace was recorded from.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceMeta {
    /// Sweep config name (the `TraceConfig::label` at record time).
    pub label: String,
    /// Trial index within the config.
    pub trial: u64,
    /// Machine preset name.
    pub machine: String,
    /// Logical threads in the trial.
    pub threads: u64,
}

/// One recorded trial trace, decoupled from the simulator: built from
/// a `TraceLog` or parsed back from an artifact file.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    pub meta: TraceMeta,
    /// Epoch bin width the samples were recorded with.
    pub epoch_cycles: u64,
    /// Model cycle at which the log was finalised (trial elapsed time).
    pub end_cycles: u64,
    /// Events lost to ring wrap-around (0 = complete event record).
    pub dropped: u64,
    /// Live `Counters` totals at finalisation — recorded directly from
    /// the simulator, *not* derived from the samples, so a parsed
    /// artifact can prove `sum(samples) == totals`.
    pub totals: Counters,
    pub spans: Vec<PhaseSpan>,
    pub samples: Vec<EpochSample>,
    pub events: Vec<TraceRecord>,
}

/// Artifact read/parse failure.
#[derive(Debug)]
pub enum TraceError {
    /// Malformed artifact content.
    Parse { line: usize, what: String },
    /// Filesystem failure reading or writing an artifact.
    Io(std::io::Error),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Parse { line, what } => {
                write!(f, "trace artifact line {line}: {what}")
            }
            TraceError::Io(e) => write!(f, "trace artifact I/O: {e}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

const MAGIC: &str = "nqp-trace v1";

impl Trace {
    /// Package a finished `TraceLog` (from `NumaSim::take_trace`) with
    /// its cell identity.
    #[must_use]
    pub fn from_log(meta: TraceMeta, log: &TraceLog) -> Trace {
        Trace {
            meta,
            epoch_cycles: log.config().epoch_cycles,
            end_cycles: log.end_cycles(),
            dropped: log.dropped(),
            totals: log.totals(),
            spans: log.spans().to_vec(),
            samples: log.samples().to_vec(),
            events: log.events().into_iter().cloned().collect(),
        }
    }

    /// Counter totals reconstructed from the recorded time-series (the
    /// telescoping sum of all epoch samples). Equal to [`Trace::totals`]
    /// bit-for-bit for any complete trace — the invariant the Table III
    /// replay test pins down.
    #[must_use]
    pub fn sampled_totals(&self) -> Counters {
        self.samples
            .iter()
            .fold(Counters::default(), |acc, s| acc + s.counters)
    }

    /// Serialise to the `nqp-trace v1` text artifact. Byte-deterministic:
    /// the output is a pure function of the trace content.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(MAGIC);
        out.push('\n');
        out.push_str(&format!(
            "meta label={} trial={} machine={} threads={} epoch_cycles={} end_cycles={} dropped={}\n",
            esc(&self.meta.label),
            self.meta.trial,
            esc(&self.meta.machine),
            self.meta.threads,
            self.epoch_cycles,
            self.end_cycles,
            self.dropped,
        ));
        out.push_str("total");
        for (name, v) in self.totals.fields() {
            out.push_str(&format!(" {name}={v}"));
        }
        out.push('\n');
        for s in &self.spans {
            out.push_str(&format!(
                "span name={} depth={} begin={} end={}\n",
                esc(&s.name),
                s.depth,
                s.begin_cycles,
                s.end_cycles
            ));
        }
        for s in &self.samples {
            out.push_str(&format!(
                "sample epoch={} start={} end={} node_lines={} link_lines={}",
                s.epoch,
                s.start_cycles,
                s.end_cycles,
                join_lines(&s.node_lines),
                join_lines(&s.link_lines)
            ));
            // Only nonzero counters, in declaration order: compact and
            // still deterministic (a parse defaults absent fields to 0).
            for (name, v) in s.counters.fields() {
                if v > 0 {
                    out.push_str(&format!(" {name}={v}"));
                }
            }
            out.push('\n');
        }
        for e in &self.events {
            out.push_str("event at=");
            out.push_str(&e.at.to_string());
            out.push_str(" tid=");
            if e.tid == NO_TID {
                out.push('-');
            } else {
                out.push_str(&e.tid.to_string());
            }
            out.push(' ');
            out.push_str(&event_text(&e.event));
            out.push('\n');
        }
        out
    }

    /// Parse a `nqp-trace v1` artifact.
    pub fn parse(text: &str) -> Result<Trace, TraceError> {
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, l)) if l == MAGIC => {}
            other => {
                return Err(TraceError::Parse {
                    line: 1,
                    what: format!(
                        "expected header {MAGIC:?}, got {:?}",
                        other.map(|(_, l)| l).unwrap_or("")
                    ),
                })
            }
        }
        let mut trace = Trace {
            meta: TraceMeta::default(),
            epoch_cycles: 0,
            end_cycles: 0,
            dropped: 0,
            totals: Counters::default(),
            spans: Vec::new(),
            samples: Vec::new(),
            events: Vec::new(),
        };
        let mut saw_meta = false;
        for (idx, line) in lines {
            let lineno = idx + 1;
            if line.is_empty() {
                continue;
            }
            let mut toks = line.split_whitespace();
            let tag = toks.next().unwrap_or("");
            let kv = Fields::parse(toks, lineno)?;
            match tag {
                "meta" => {
                    saw_meta = true;
                    trace.meta.label = kv.text("label", lineno)?;
                    trace.meta.trial = kv.num("trial", lineno)?;
                    trace.meta.machine = kv.text("machine", lineno)?;
                    trace.meta.threads = kv.num("threads", lineno)?;
                    trace.epoch_cycles = kv.num("epoch_cycles", lineno)?;
                    trace.end_cycles = kv.num("end_cycles", lineno)?;
                    trace.dropped = kv.num("dropped", lineno)?;
                }
                "total" => {
                    trace.totals = kv.counters(lineno)?;
                }
                "span" => trace.spans.push(PhaseSpan {
                    name: kv.text("name", lineno)?,
                    depth: kv.num("depth", lineno)? as u32,
                    begin_cycles: kv.num("begin", lineno)?,
                    end_cycles: kv.num("end", lineno)?,
                }),
                "sample" => trace.samples.push(EpochSample {
                    epoch: kv.num("epoch", lineno)?,
                    start_cycles: kv.num("start", lineno)?,
                    end_cycles: kv.num("end", lineno)?,
                    node_lines: split_lines(&kv.text("node_lines", lineno)?, lineno)?,
                    link_lines: split_lines(&kv.text("link_lines", lineno)?, lineno)?,
                    counters: kv.counters(lineno)?,
                }),
                "event" => {
                    let tid = match kv.raw("tid") {
                        Some("-") => NO_TID,
                        _ => kv.num("tid", lineno)? as u32,
                    };
                    trace.events.push(TraceRecord {
                        at: kv.num("at", lineno)?,
                        tid,
                        event: event_parse(&kv, lineno)?,
                    });
                }
                other => {
                    return Err(TraceError::Parse {
                        line: lineno,
                        what: format!("unknown record tag {other:?}"),
                    })
                }
            }
        }
        if !saw_meta {
            return Err(TraceError::Parse { line: 1, what: "missing meta record".into() });
        }
        Ok(trace)
    }

    /// Write the text artifact to `path`.
    pub fn write_file(&self, path: &Path) -> Result<(), TraceError> {
        std::fs::write(path, self.to_text())?;
        Ok(())
    }

    /// Read and parse an artifact from `path`.
    pub fn read_file(path: &Path) -> Result<Trace, TraceError> {
        let text = std::fs::read_to_string(path)?;
        Trace::parse(&text)
    }
}

/// Filesystem-safe slug for a config label: `[A-Za-z0-9._-]` kept,
/// every other run of characters collapsed to one `_`, trimmed.
#[must_use]
pub fn slug(label: &str) -> String {
    let mut out = String::with_capacity(label.len());
    let mut gap = false;
    for c in label.chars() {
        if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
            out.push(c);
            gap = false;
        } else if !gap && !out.is_empty() {
            out.push('_');
            gap = true;
        }
    }
    while out.ends_with('_') {
        out.pop();
    }
    if out.is_empty() {
        out.push_str("trace");
    }
    out
}

/// Canonical artifact file name for one sweep cell: the journal's
/// `(config, trial)` key maps to `<slug(config)>-t<trial>.trace`.
#[must_use]
pub fn artifact_name(label: &str, trial: usize) -> String {
    format!("{}-t{trial}.trace", slug(label))
}

/// Percent-encode the characters the line format reserves.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b' ' | b'%' | b'=' | b'\n' | b'\r' | b'\t' => {
                out.push_str(&format!("%{b:02x}"));
            }
            _ => out.push(b as char),
        }
    }
    out
}

fn unesc(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' && i + 3 <= bytes.len() {
            let hex = s.get(i + 1..i + 3);
            if let Some(v) = hex.and_then(|h| u8::from_str_radix(h, 16).ok()) {
                out.push(v);
                i += 3;
                continue;
            }
        }
        out.push(bytes[i]);
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// `1,2,3` (or `-` when empty) for node/link line vectors.
fn join_lines(v: &[u64]) -> String {
    if v.is_empty() {
        "-".to_string()
    } else {
        v.iter().map(|x| x.to_string()).collect::<Vec<_>>().join(",")
    }
}

fn split_lines(s: &str, lineno: usize) -> Result<Vec<u64>, TraceError> {
    if s == "-" {
        return Ok(Vec::new());
    }
    s.split(',')
        .map(|x| {
            x.parse::<u64>().map_err(|e| TraceError::Parse {
                line: lineno,
                what: format!("bad line-vector entry {x:?}: {e}"),
            })
        })
        .collect()
}

/// Parsed `key=value` tokens of one line.
struct Fields<'a> {
    pairs: Vec<(&'a str, &'a str)>,
}

impl<'a> Fields<'a> {
    fn parse(
        toks: impl Iterator<Item = &'a str>,
        lineno: usize,
    ) -> Result<Fields<'a>, TraceError> {
        let mut pairs = Vec::new();
        for t in toks {
            let (k, v) = t.split_once('=').ok_or_else(|| TraceError::Parse {
                line: lineno,
                what: format!("token {t:?} is not key=value"),
            })?;
            pairs.push((k, v));
        }
        Ok(Fields { pairs })
    }

    fn raw(&self, key: &str) -> Option<&'a str> {
        self.pairs.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
    }

    fn text(&self, key: &str, lineno: usize) -> Result<String, TraceError> {
        self.raw(key).map(unesc).ok_or_else(|| TraceError::Parse {
            line: lineno,
            what: format!("missing field {key:?}"),
        })
    }

    fn num(&self, key: &str, lineno: usize) -> Result<u64, TraceError> {
        let raw = self.raw(key).ok_or_else(|| TraceError::Parse {
            line: lineno,
            what: format!("missing field {key:?}"),
        })?;
        raw.parse::<u64>().map_err(|e| TraceError::Parse {
            line: lineno,
            what: format!("field {key}={raw:?}: {e}"),
        })
    }

    /// Fold every token whose key names a counter into a `Counters`
    /// (absent counters stay 0; unknown keys are left to the caller).
    fn counters(&self, lineno: usize) -> Result<Counters, TraceError> {
        let mut c = Counters::default();
        for (k, v) in &self.pairs {
            let parsed = v.parse::<u64>().map_err(|e| TraceError::Parse {
                line: lineno,
                what: format!("field {k}={v:?}: {e}"),
            });
            // Only treat successfully-parsed numeric fields with known
            // counter names as counters; structural fields (epoch,
            // node_lines, …) simply don't match a counter name.
            if c.set(k, 0) {
                c.set(k, parsed?);
            }
        }
        Ok(c)
    }
}

fn event_text(e: &TraceEvent) -> String {
    match e {
        TraceEvent::RegionBegin { region, threads } => {
            format!("kind=region-begin region={region} threads={threads}")
        }
        TraceEvent::RegionEnd { region, elapsed_cycles } => {
            format!("kind=region-end region={region} elapsed={elapsed_cycles}")
        }
        TraceEvent::PageFault { node, pages } => {
            format!("kind=page-fault node={node} pages={pages}")
        }
        TraceEvent::ThreadMigration { from_core, to_core } => {
            format!("kind=thread-migration from={from_core} to={to_core}")
        }
        TraceEvent::Preemption { core } => format!("kind=preemption core={core}"),
        TraceEvent::PageMigration { from_node, to_node, pages } => {
            format!("kind=page-migration from={from_node} to={to_node} pages={pages}")
        }
        TraceEvent::PageMigrationBlocked { node } => {
            format!("kind=page-migration-blocked node={node}")
        }
        TraceEvent::AllocFaultInjected { region } => {
            format!("kind=alloc-fault region={region}")
        }
        TraceEvent::NodeOffline { node, evacuated_pages } => {
            format!("kind=node-offline node={node} evacuated={evacuated_pages}")
        }
        TraceEvent::LockContention { wait_cycles } => {
            format!("kind=lock-contention wait={wait_cycles}")
        }
        TraceEvent::DeadlineAbandon { deadline_cycles, elapsed_cycles } => {
            format!("kind=deadline-abandon deadline={deadline_cycles} elapsed={elapsed_cycles}")
        }
        TraceEvent::AdvisorDecision { region, decision } => {
            format!("kind=advisor region={region} decision={}", esc(decision))
        }
        TraceEvent::TierDecision { region, decision } => {
            format!("kind=tier region={region} decision={}", esc(decision))
        }
    }
}

fn event_parse(kv: &Fields<'_>, lineno: usize) -> Result<TraceEvent, TraceError> {
    let kind = kv.raw("kind").ok_or_else(|| TraceError::Parse {
        line: lineno,
        what: "event without kind".into(),
    })?;
    Ok(match kind {
        "region-begin" => TraceEvent::RegionBegin {
            region: kv.num("region", lineno)?,
            threads: kv.num("threads", lineno)? as u32,
        },
        "region-end" => TraceEvent::RegionEnd {
            region: kv.num("region", lineno)?,
            elapsed_cycles: kv.num("elapsed", lineno)?,
        },
        "page-fault" => TraceEvent::PageFault {
            node: kv.num("node", lineno)? as usize,
            pages: kv.num("pages", lineno)?,
        },
        "thread-migration" => TraceEvent::ThreadMigration {
            from_core: kv.num("from", lineno)? as usize,
            to_core: kv.num("to", lineno)? as usize,
        },
        "preemption" => TraceEvent::Preemption { core: kv.num("core", lineno)? as usize },
        "page-migration" => TraceEvent::PageMigration {
            from_node: kv.num("from", lineno)? as usize,
            to_node: kv.num("to", lineno)? as usize,
            pages: kv.num("pages", lineno)?,
        },
        "page-migration-blocked" => {
            TraceEvent::PageMigrationBlocked { node: kv.num("node", lineno)? as usize }
        }
        "alloc-fault" => TraceEvent::AllocFaultInjected { region: kv.num("region", lineno)? },
        "node-offline" => TraceEvent::NodeOffline {
            node: kv.num("node", lineno)? as usize,
            evacuated_pages: kv.num("evacuated", lineno)?,
        },
        "lock-contention" => {
            TraceEvent::LockContention { wait_cycles: kv.num("wait", lineno)? }
        }
        "deadline-abandon" => TraceEvent::DeadlineAbandon {
            deadline_cycles: kv.num("deadline", lineno)?,
            elapsed_cycles: kv.num("elapsed", lineno)?,
        },
        "advisor" => TraceEvent::AdvisorDecision {
            region: kv.num("region", lineno)?,
            decision: kv.text("decision", lineno)?,
        },
        "tier" => TraceEvent::TierDecision {
            region: kv.num("region", lineno)?,
            decision: kv.text("decision", lineno)?,
        },
        other => {
            return Err(TraceError::Parse {
                line: lineno,
                what: format!("unknown event kind {other:?}"),
            })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let mut totals = Counters::default();
        totals.page_faults = 12;
        totals.compute_cycles = 900;
        let mut c1 = Counters::default();
        c1.page_faults = 5;
        c1.compute_cycles = 400;
        let mut c2 = Counters::default();
        c2.page_faults = 7;
        c2.compute_cycles = 500;
        Trace {
            meta: TraceMeta {
                label: "os-default (+flags)".into(),
                trial: 3,
                machine: "B".into(),
                threads: 8,
            },
            epoch_cycles: 1_000,
            end_cycles: 2_500,
            dropped: 0,
            totals,
            spans: vec![
                PhaseSpan { name: "agg:build".into(), begin_cycles: 0, end_cycles: 1_200, depth: 1 },
                PhaseSpan { name: "trial 100%".into(), begin_cycles: 0, end_cycles: 2_500, depth: 0 },
            ],
            samples: vec![
                EpochSample {
                    epoch: 1,
                    start_cycles: 0,
                    end_cycles: 1_200,
                    counters: c1,
                    node_lines: vec![3, 4],
                    link_lines: vec![1],
                },
                EpochSample {
                    epoch: 2,
                    start_cycles: 1_200,
                    end_cycles: 2_500,
                    counters: c2,
                    node_lines: vec![0, 9],
                    link_lines: Vec::new(),
                },
            ],
            events: vec![
                TraceRecord { at: 0, tid: NO_TID, event: TraceEvent::RegionBegin { region: 0, threads: 8 } },
                TraceRecord { at: 40, tid: 2, event: TraceEvent::PageFault { node: 1, pages: 16 } },
                TraceRecord { at: 90, tid: 5, event: TraceEvent::ThreadMigration { from_core: 3, to_core: 11 } },
                TraceRecord { at: 99, tid: 0, event: TraceEvent::LockContention { wait_cycles: 77 } },
                TraceRecord { at: 100, tid: NO_TID, event: TraceEvent::NodeOffline { node: 1, evacuated_pages: 64 } },
                TraceRecord {
                    at: 120,
                    tid: NO_TID,
                    event: TraceEvent::AdvisorDecision {
                        region: 2,
                        decision: "rehome=interleave:moved=64".into(),
                    },
                },
            ],
        }
    }

    #[test]
    fn text_round_trips_exactly() {
        let t = sample_trace();
        let text = t.to_text();
        let back = Trace::parse(&text).unwrap();
        assert_eq!(back, t);
        // Serialisation is a pure function: re-serialising the parse
        // reproduces the bytes.
        assert_eq!(back.to_text(), text);
    }

    #[test]
    fn labels_with_reserved_chars_survive() {
        let mut t = sample_trace();
        t.meta.label = "weird = label % with\ttabs".into();
        let back = Trace::parse(&t.to_text()).unwrap();
        assert_eq!(back.meta.label, t.meta.label);
    }

    #[test]
    fn sampled_totals_match_stored_totals() {
        let t = sample_trace();
        assert_eq!(t.sampled_totals(), t.totals);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Trace::parse("not a trace").is_err());
        assert!(Trace::parse("nqp-trace v1\nbogus tag=1").is_err());
        assert!(Trace::parse("nqp-trace v1\n").is_err(), "meta is mandatory");
        let missing = "nqp-trace v1\nmeta label=x trial=0 machine=B threads=2 epoch_cycles=5";
        assert!(Trace::parse(missing).is_err(), "meta must be complete");
    }

    #[test]
    fn slug_is_filesystem_safe_and_stable() {
        assert_eq!(slug("os-default (+flags)"), "os-default_flags");
        assert_eq!(slug("tuned (+flags)"), "tuned_flags");
        assert_eq!(slug("..//.."), ".._..");
        assert_eq!(slug("***"), "trace");
        assert_eq!(artifact_name("tuned (+flags)", 2), "tuned_flags-t2.trace");
    }
}
