//! Integration tests for the open-loop serve driver: bit-identical
//! replay across serial / parallel / kill-and-resume execution, chaos
//! behaviour under a mid-serve node outage, and the journal round-trip
//! of serve cells — the same discipline `tests/parallel.rs` and
//! `tests/resume.rs` pin for sweeps.

use nqp::core::journal::{grid_fingerprint, read_journal_raw, JournalWriter};
use nqp::serve::{
    run_cells, ArrivalSpec, CellInput, CellStats, ClassProfile, OutageSpec, ServeAdvisor,
    ServeReport, ServeSpec,
};
use nqp::sim::SimResult;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

fn temp_journal(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("nqp-serve-{}-{tag}-{n}.jsonl", std::process::id()))
}

/// Synthetic calibrated profiles: two classes with different service
/// shapes (a cheap scan and a two-phase join), degraded variants ~50%
/// slower, nonzero evacuation bills.
fn profiles() -> Vec<ClassProfile> {
    vec![
        ClassProfile {
            name: "w1".into(),
            healthy: vec![("agg:build".into(), 500_000), ("agg:finalize".into(), 120_000)],
            degraded: vec![("agg:build".into(), 760_000), ("agg:finalize".into(), 180_000)],
            evacuated_pages: 96,
        },
        ClassProfile {
            name: "w3".into(),
            healthy: vec![("hj:build".into(), 300_000), ("hj:probe".into(), 900_000)],
            degraded: vec![("hj:build".into(), 450_000), ("hj:probe".into(), 1_350_000)],
            evacuated_pages: 160,
        },
    ]
}

fn spec(rate_milli: u64, outage: Option<OutageSpec>) -> ServeSpec {
    ServeSpec {
        tenants: 6,
        duration_mcycles: 40,
        arrivals: ArrivalSpec::Burst {
            rate_milli,
            mult: 6,
            on_mcycles: 6,
            off_mcycles: 10,
        },
        lanes: 3,
        queue_cap: 8,
        bucket_cap: 12,
        refill_milli_per_mcycle: 6_000,
        deadline_mcycles: 4,
        breaker_threshold: 6,
        epoch_mcycles: 4,
        outage,
        advisor: ServeAdvisor::default(),
        seed: 1234,
    }
}

fn cells(rate_milli: u64, outage: Option<OutageSpec>) -> Vec<CellInput> {
    ["os-default", "tuned"]
        .iter()
        .map(|n| CellInput { config: (*n).to_string(), spec: spec(rate_milli, outage) })
        .collect()
}

/// The tuned cell gets faster profiles — cells must not share state.
fn calibrate(i: usize) -> SimResult<Vec<ClassProfile>> {
    let mut p = profiles();
    if i == 1 {
        for c in &mut p {
            for ph in c.healthy.iter_mut().chain(c.degraded.iter_mut()) {
                ph.1 = (ph.1 * 2) / 3;
            }
        }
    }
    Ok(p)
}

fn run(
    grid: &[CellInput],
    adopted: &HashMap<String, CellStats>,
    jobs: usize,
    max_cells: Option<usize>,
    journal: Option<&PathBuf>,
) -> ServeReport {
    let fp = grid_fingerprint("serve test grid");
    let mut writer = journal.map(|p| {
        JournalWriter::create(p, &fp, "serve test grid").expect("create journal")
    });
    let mut sink = |stats: &CellStats, _: &[ClassProfile], _: &[nqp::serve::Session]| {
        if let Some(w) = writer.as_mut() {
            w.append_kind("serve-cell", &stats.fields_json()).expect("journal append");
        }
        Ok(())
    };
    run_cells(grid, adopted, jobs, max_cells, false, &calibrate, &mut sink)
        .expect("serve run")
}

#[test]
fn serial_parallel_and_resumed_runs_are_bit_identical() {
    let grid = cells(4_000, None);
    let serial = run(&grid, &HashMap::new(), 1, None, None);
    let parallel = run(&grid, &HashMap::new(), 4, None, None);
    assert_eq!(serial, parallel, "--jobs N must not change a single byte");

    // Kill after one cell (the deterministic interruption), then adopt
    // the journaled cell and finish: report and re-rendered outputs
    // must match the uninterrupted run exactly.
    let jpath = temp_journal("kill-resume");
    let partial = run(&grid, &HashMap::new(), 1, Some(1), Some(&jpath));
    assert!(partial.interrupted);
    assert_eq!(partial.cells.len(), 1);

    let contents = read_journal_raw(&jpath).expect("read journal back");
    assert!(!contents.torn);
    let mut adopted = HashMap::new();
    for (kind, obj) in &contents.records {
        assert_eq!(kind, "serve-cell");
        let cell = CellStats::from_obj(obj).expect("journaled cell decodes");
        adopted.insert(cell.config.clone(), cell);
    }
    assert_eq!(adopted.len(), 1);

    let resumed = run(&grid, &adopted, 1, None, None);
    assert!(!resumed.interrupted);
    assert_eq!(resumed, serial, "kill-and-resume must reproduce the full run");
    assert_eq!(resumed.table(), serial.table());
    assert_eq!(resumed.to_csv(), serial.to_csv());
    assert_eq!(resumed.to_json(), serial.to_json());
    let _ = std::fs::remove_file(&jpath);
}

#[test]
fn torn_journal_tail_is_discarded_and_rerun() {
    let grid = cells(4_000, None);
    let jpath = temp_journal("torn");
    let full = run(&grid, &HashMap::new(), 1, None, Some(&jpath));

    // Tear the last record mid-line, as a crash mid-append would.
    let data = std::fs::read(&jpath).expect("journal bytes");
    std::fs::write(&jpath, &data[..data.len() - 37]).expect("tear journal");
    let contents = read_journal_raw(&jpath).expect("read torn journal");
    assert!(contents.torn);
    assert_eq!(contents.records.len(), 1, "only the intact cell survives");

    let mut adopted = HashMap::new();
    for (_, obj) in &contents.records {
        let cell = CellStats::from_obj(obj).expect("decodes");
        adopted.insert(cell.config.clone(), cell);
    }
    let resumed = run(&grid, &adopted, 1, None, None);
    assert_eq!(resumed, full, "re-running the torn cell reconverges");
    let _ = std::fs::remove_file(&jpath);
}

#[test]
fn node_offline_mid_serve_sheds_evacuates_and_recovers() {
    // Chaos drill: node 1 dies at 12 Mcycles, comes back at 24, while a
    // burst is in flight. The contract: the run drains (not a wedged
    // queue), load is shed, the evacuation is charged, and service
    // recovers after the window.
    let outage = Some(OutageSpec { start_mcycles: 12, end_mcycles: 24, node: 1 });
    let grid = cells(8_000, outage);
    let report = run(&grid, &HashMap::new(), 1, None, None);

    assert!(!report.interrupted, "an outage is not an interruption");
    for cell in &report.cells {
        let t = cell.totals();
        assert!(t.arrivals > 100, "burst grid produced work ({})", t.arrivals);
        assert_eq!(
            t.arrivals,
            t.admitted + t.shed(),
            "every arrival resolves to admit-or-shed"
        );
        assert_eq!(t.admitted, t.completed + t.timeouts, "no session is lost");
        assert!(t.shed() > 0, "overload plus outage must shed ({:?})", t);
        assert_eq!(
            cell.evacuated_pages, 160,
            "worst-class evacuation charged exactly once"
        );
        assert!(t.degraded > 0, "outage window serves sampled answers");
        assert!(
            cell.max_depth <= (6 * 8) as u64,
            "queue depth stays bounded: {}",
            cell.max_depth
        );
        assert!(cell.hist.p99() > 0, "p99 is still reported under chaos");
        // Recovery: the last epoch with arrivals runs below ladder
        // level 3 (the outage tier) once the node is back.
        let last_active =
            cell.epochs.iter().rev().find(|e| e.arrivals > 0).expect("active epochs");
        assert!(
            last_active.level < 3,
            "ladder must come back down after the outage: {:?}",
            last_active
        );
    }
}

#[test]
fn epoch_rows_telescope_and_ladder_reacts_to_load() {
    let grid = cells(10_000, None);
    let report = run(&grid, &HashMap::new(), 1, None, None);
    for cell in &report.cells {
        let t = cell.totals();
        let sum = |f: fn(&nqp::serve::EpochRow) -> u64| -> u64 {
            cell.epochs.iter().map(f).sum()
        };
        assert_eq!(sum(|e| e.arrivals), t.arrivals);
        assert_eq!(sum(|e| e.admitted), t.admitted);
        assert_eq!(sum(|e| e.completed), t.completed);
        assert_eq!(sum(|e| e.shed), t.shed());
        assert_eq!(sum(|e| e.timeouts), t.timeouts);
        // Under a 6x burst the ladder must leave level 0 at some point.
        assert!(
            cell.epochs.iter().any(|e| e.level > 0),
            "burst overload never moved the ladder: {:?}",
            cell.epochs
        );
    }
}
