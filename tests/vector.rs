//! Differential tests for the vectorized operator path (DESIGN.md §4j).
//!
//! The tuple-at-a-time engine is the oracle: for every workload, under
//! every configuration class (pinned/unpinned threads, THP, AutoNUMA,
//! both machines, an active fault plan, tracing), the vectorized path
//! must produce *identical query results* — checksums and group/match
//! counts. Simulated cycles and counters legitimately move (that is the
//! optimisation; EXPERIMENTS.md declares it), so the second property
//! pins the vectorized path against itself instead: byte-identical
//! cycles, counters, region stats, and trace logs across host shard
//! counts, batch sizes, the reference memory model, and reruns.
//! Finally, the real `nqp-cli` binary is driven through `--engine`
//! crossings: sweep/serve byte-diffs under `--jobs`/`--shards`,
//! journal interrupt + resume, and typed rejection of malformed
//! `--engine` / `--batch-size` tokens.

use nqp::datagen::{generate, JoinDataset};
use nqp::indexes::IndexKind;
use nqp::query::{
    try_run_aggregation_on, try_run_hash_join_on, try_run_inl_join_on, AggConfig,
    EngineKind, WorkloadEnv,
};
use nqp::sim::{Counters, FaultKind, FaultPlan, SimConfig, ThreadPlacement, TraceConfig, TraceLog};
use nqp::topology::machines;
use proptest::prelude::*;
use std::path::PathBuf;
use std::process::Command;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The four configuration classes of the hotpath differential, as
/// workload environments: B with pinned sparse threads and THP/AutoNUMA
/// off, A at OS defaults, B under an active (non-fatal) fault plan, and
/// B with tracing enabled.
fn env(cfg_idx: usize, threads: usize, engine: EngineKind) -> WorkloadEnv {
    let sim = match cfg_idx {
        0 => SimConfig::os_default(machines::machine_b())
            .with_threads(ThreadPlacement::Sparse)
            .with_autonuma(false)
            .with_thp(false),
        1 => SimConfig::os_default(machines::machine_a()),
        2 => SimConfig::os_default(machines::machine_b()).with_faults(
            FaultPlan::new(17)
                .with_event(
                    0,
                    u64::MAX,
                    FaultKind::LinkDegrade { link: 1, latency_x: 2.5, bandwidth_div: 2.0 },
                )
                .with_event(
                    0,
                    u64::MAX,
                    FaultKind::PreemptionStorm { period_cycles: 30_000 },
                ),
        ),
        _ => SimConfig::os_default(machines::machine_b())
            .with_trace(TraceConfig::default().with_epoch_cycles(25_000).with_label("vec")),
    };
    let mut e = WorkloadEnv::os_default(machines::machine_b());
    e.sim = sim;
    e.threads = threads;
    e.engine = engine;
    e
}

/// Everything observable from one workload run. The differential
/// property compares only `checksum`/`count` between engines; the
/// self-identity property compares the whole struct.
#[derive(Debug, Clone, PartialEq)]
struct Obs {
    checksum: u64,
    count: u64,
    cycles: Vec<u64>,
    counters: Counters,
    regions: Vec<(u64, Counters)>,
    trace: Option<TraceLog>,
}

fn observe(which: usize, env: &WorkloadEnv, n: usize, seed: u64) -> Obs {
    match which {
        0 | 1 => {
            let card = (n as u64 / 4).max(1);
            let acfg = if which == 0 {
                AggConfig::w1(n, card, seed)
            } else {
                AggConfig::w2(n, card, seed)
            };
            let records = generate(acfg.dataset, n, card, seed);
            let out = try_run_aggregation_on(env, &acfg, &records).expect("agg runs");
            Obs {
                checksum: out.checksum,
                count: out.groups,
                cycles: vec![out.exec_cycles, out.load_cycles],
                counters: out.counters,
                regions: out
                    .regions
                    .iter()
                    .map(|r| (r.elapsed_cycles, r.counters))
                    .collect(),
                trace: out.trace,
            }
        }
        2 => {
            let data = JoinDataset::generate(n / 4, seed);
            let out = try_run_hash_join_on(env, &data).expect("join runs");
            Obs {
                checksum: out.checksum,
                count: out.matches,
                cycles: vec![out.build_cycles, out.probe_cycles, out.load_cycles],
                counters: out.counters,
                regions: Vec::new(),
                trace: out.trace,
            }
        }
        _ => {
            let data = JoinDataset::generate(n / 4, seed);
            let kind = IndexKind::ALL[seed as usize % IndexKind::ALL.len()];
            let out = try_run_inl_join_on(env, kind, &data).expect("inl join runs");
            Obs {
                checksum: out.checksum,
                count: out.matches,
                cycles: vec![out.build_cycles, out.join_cycles],
                counters: out.counters,
                regions: Vec::new(),
                trace: out.trace,
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// W1–W4 under every configuration class: the vectorized path's
    /// query results are byte-identical to the tuple oracle's.
    #[test]
    fn vectorized_results_equal_the_tuple_oracle(
        which in 0usize..4,
        cfg_idx in 0usize..4,
        threads in 1usize..5,
        n in 400usize..2400,
        seed in 0u64..1000,
    ) {
        let t = observe(which, &env(cfg_idx, threads, EngineKind::Tuple), n, seed);
        let v = observe(which, &env(cfg_idx, threads, EngineKind::Vectorized), n, seed);
        prop_assert_eq!(t.checksum, v.checksum, "result checksum diverges");
        prop_assert_eq!(t.count, v.count, "groups/matches diverge");
    }

    /// The vectorized path against itself: cycles, counters, region
    /// stats, and trace logs must not move with the host shard count,
    /// the staging batch size, or the reference memory model — the
    /// same invariants `--jobs`/`--shards` already carry for the
    /// tuple path.
    #[test]
    fn vectorized_path_is_self_identical(
        which in 0usize..4,
        cfg_idx in 0usize..4,
        threads in 1usize..5,
        n in 400usize..1600,
        seed in 0u64..1000,
        batch_idx in 0usize..4,
        shards in 2usize..4,
    ) {
        let batch = [1usize, 31, 256, 4096][batch_idx];
        let base = env(cfg_idx, threads, EngineKind::Vectorized);
        let one = observe(which, &base, n, seed);

        let mut sharded = base.clone();
        sharded.batch = batch;
        sharded.sim = sharded.sim.with_shards(shards);
        prop_assert_eq!(
            &one,
            &observe(which, &sharded, n, seed),
            "diverged under shards={} batch={}", shards, batch
        );

        let mut reference = base.clone();
        reference.sim = reference.sim.with_reference_model(true);
        prop_assert_eq!(
            &one,
            &observe(which, &reference, n, seed),
            "diverged under the reference memory model"
        );
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("nqp-vector-{}-{tag}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_nqp-cli"))
}

/// Malformed `--engine` and `--batch-size` tokens exit nonzero with the
/// typed BadSpec message naming the offending token.
#[test]
fn malformed_engine_and_batch_specs_are_rejected() {
    let reject = |args: &[&str], needle: &str| {
        let out = cli().args(args).output().unwrap();
        assert!(!out.status.success(), "{args:?} should fail");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("malformed"), "{args:?}: no `malformed` in `{err}`");
        assert!(err.contains(needle), "{args:?}: no `{needle}` in `{err}`");
    };
    let w = ["workload", "w1", "--machine", "B", "--n", "500", "--card", "50"];
    reject(&[&w[..], &["--engine", "bogus"]].concat(), "`bogus`");
    reject(&[&w[..], &["--batch-size", "0"]].concat(), "nonzero");
    reject(&[&w[..], &["--batch-size", "999999999999"]].concat(), "overflows");
    reject(&[&w[..], &["--batch-size", "many"]].concat(), "unsigned integer");
    reject(
        &["sweep", "w1", "--trials", "1", "--engine", "tuple+nope"],
        "`nope`",
    );
}

/// Through the real binary: the `checksum:` line — the query result —
/// is identical under `--engine tuple` and `--engine vec` for every
/// workload, while `--batch-size` never changes any output byte of the
/// vectorized run.
#[test]
fn workload_checksums_match_across_engines() {
    for which in ["w1", "w2", "w3", "w4"] {
        let run = |extra: &[&str]| {
            let out = cli()
                .args([
                    "workload", which, "--machine", "B", "--threads", "4", "--n", "3000",
                    "--card", "300",
                ])
                .args(extra)
                .output()
                .unwrap();
            assert!(out.status.success(), "{which} {extra:?} failed: {out:?}");
            String::from_utf8(out.stdout).unwrap()
        };
        let checksum_of = |text: &str| {
            text.lines()
                .find(|l| l.trim_start().starts_with("checksum:"))
                .unwrap_or_else(|| panic!("no checksum line in `{text}`"))
                .trim()
                .to_string()
        };
        let tuple = run(&["--engine", "tuple"]);
        let vec_out = run(&["--engine", "vec"]);
        assert_eq!(
            checksum_of(&tuple),
            checksum_of(&vec_out),
            "{which}: engines disagree on the result checksum"
        );
        // Batch size resizes host staging only: every byte identical.
        let vec_batched = run(&["--engine", "vec", "--batch-size", "7"]);
        assert_eq!(vec_out, vec_batched, "{which}: --batch-size moved vec output");
    }
}

/// An `--engine tuple+vec` sweep is byte-identical run serially or under
/// `--jobs 2 --shards 2` — stdout and CSV — extending the executor
/// identity to the engine-crossed grid.
#[test]
fn engine_crossed_sweep_is_byte_identical_under_jobs_and_shards() {
    let run = |parallel: bool| {
        let dir = temp_dir(if parallel { "par" } else { "ser" });
        let csv = dir.join("sweep.csv");
        let mut cmd = cli();
        cmd.args([
            "sweep", "w3", "--machine", "B", "--threads", "4", "--n", "2000", "--trials",
            "2", "--engine", "tuple+vec",
        ]);
        cmd.arg("--csv").arg(&csv);
        if parallel {
            cmd.args(["--jobs", "2", "--shards", "2"]);
        }
        let out = cmd.output().unwrap();
        assert!(out.status.success(), "sweep failed (parallel={parallel}): {out:?}");
        (out.stdout, std::fs::read(&csv).unwrap())
    };
    let serial = run(false);
    let parallel = run(true);
    assert_eq!(
        String::from_utf8_lossy(&serial.0),
        String::from_utf8_lossy(&parallel.0),
        "stdout diverges under --jobs/--shards"
    );
    assert_eq!(serial.1, parallel.1, "CSV diverges under --jobs/--shards");
}

/// `--engine tuple` is the default spelled out: stdout and CSV are
/// byte-identical to omitting the flag (the check.sh gate).
#[test]
fn engine_tuple_flag_is_byte_identical_to_default() {
    let run = |engine: Option<&str>| {
        let dir = temp_dir("dflt");
        let csv = dir.join("sweep.csv");
        let mut cmd = cli();
        cmd.args([
            "sweep", "w1", "--machine", "B", "--threads", "4", "--n", "2500", "--card",
            "250", "--trials", "2",
        ]);
        if let Some(e) = engine {
            cmd.args(["--engine", e]);
        }
        cmd.arg("--csv").arg(&csv);
        let out = cmd.output().unwrap();
        assert!(out.status.success(), "sweep failed: {out:?}");
        (out.stdout, std::fs::read(&csv).unwrap())
    };
    assert_eq!(run(None), run(Some("tuple")), "--engine tuple moved sweep output");
}

/// Kill-and-resume on a vectorized sweep: interrupt after 2 journaled
/// cells, resume, and require the final CSV byte-identical to an
/// uninterrupted run of the same grid.
#[test]
fn vectorized_sweep_resumes_to_identical_results() {
    let dir = temp_dir("resume");
    let base: Vec<String> = [
        "sweep", "w1", "--machine", "B", "--threads", "4", "--n", "2000", "--card", "200",
        "--trials", "2", "--engine", "vec",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();

    let full_csv = dir.join("full.csv");
    let out = cli().args(&base).arg("--csv").arg(&full_csv).output().unwrap();
    assert!(out.status.success(), "uninterrupted sweep failed: {out:?}");

    let journal = dir.join("sweep.journal");
    let out = cli()
        .args(&base)
        .arg("--journal")
        .arg(&journal)
        .args(["--max-cells", "2"])
        .output()
        .unwrap();
    assert!(out.status.success(), "interrupted sweep failed: {out:?}");

    let resumed_csv = dir.join("resumed.csv");
    let out = cli()
        .args(&base)
        .arg("--resume")
        .arg(&journal)
        .arg("--csv")
        .arg(&resumed_csv)
        .output()
        .unwrap();
    assert!(out.status.success(), "resumed sweep failed: {out:?}");

    assert_eq!(
        std::fs::read(&full_csv).unwrap(),
        std::fs::read(&resumed_csv).unwrap(),
        "resumed vectorized sweep CSV diverges from the uninterrupted run"
    );
}

/// Serve under `--engine vec`: the calibrated profiles and the DES
/// replay are deterministic — byte-identical stdout serial vs --jobs 2.
#[test]
fn vectorized_serve_is_byte_identical_under_jobs() {
    let run = |jobs: Option<&str>| {
        let mut cmd = cli();
        cmd.args([
            "serve", "w1", "--machine", "B", "--threads", "4", "--tenants", "2",
            "--duration", "10", "--configs", "tuned", "--engine", "vec", "--n", "2000",
            "--card", "200",
        ]);
        if let Some(j) = jobs {
            cmd.args(["--jobs", j]);
        }
        let out = cmd.output().unwrap();
        assert!(out.status.success(), "serve failed (jobs={jobs:?}): {out:?}");
        String::from_utf8(out.stdout).unwrap()
    };
    assert_eq!(run(None), run(Some("2")), "serve stdout diverges under --jobs");
}
