//! Gates for the epoch-driven online advisor (ISSUE 7 acceptance):
//!
//! * on the phase-shifting workload, `--advisor online` beats the best
//!   static configuration's mean cycles (with slack);
//! * a seeded adversarial re-tune is rolled back within one probation
//!   epoch and the knob is quarantined;
//! * controller decisions are byte-identical across serial, parallel,
//!   and killed-then-resumed sweeps, and unchanged by tracing on/off.

use nqp::advisor::{ControllerConfig, Knob, OnlineController};
use nqp::core::{
    sweep_parallel, sweep_supervised, AdvisorMode, SupervisorPolicy, TrialMeasurement,
    TuningConfig,
};
use nqp::query::{try_run_phase_shift, PhaseShiftConfig, WorkloadEnv};
use nqp::sim::{MemPolicy, NumaSim, RegionHook, SimError, TraceConfig, TraceEvent};
use nqp::topology::machines;

fn shift_cfg() -> PhaseShiftConfig {
    PhaseShiftConfig::small(11)
}

/// The contenders of the headline experiment: three static placements
/// (FirstTouch, Interleave, FirstTouch+AutoNUMA) and the online
/// controller starting from FirstTouch.
fn contenders() -> Vec<TuningConfig> {
    let m = machines::numa_small;
    vec![
        TuningConfig::tuned(m()).named("static-firsttouch").with_policy(MemPolicy::FirstTouch),
        TuningConfig::tuned(m()).named("static-interleave"),
        TuningConfig::tuned(m())
            .named("static-autonuma")
            .with_policy(MemPolicy::FirstTouch)
            .with_autonuma(true),
        TuningConfig::tuned(m())
            .named("online")
            .with_policy(MemPolicy::FirstTouch)
            .with_advisor(AdvisorMode::Online(ControllerConfig::default())),
    ]
}

fn run_shift(env: &WorkloadEnv) -> Result<TrialMeasurement, SimError> {
    let out = try_run_phase_shift(env, &shift_cfg())?;
    Ok(TrialMeasurement::from(out.exec_cycles))
}

#[test]
fn online_beats_every_static_config_on_the_phase_shift() {
    let configs = contenders();
    let report = sweep_supervised(
        &configs,
        4,
        2,
        &SupervisorPolicy::default(),
        &[],
        &mut |_| {},
        |env, _| run_shift(env),
    );
    let mean = |name: &str| {
        report
            .mean_cycles(name)
            .unwrap_or_else(|| panic!("{name} produced no clean trials:\n{}", report.table()))
    };
    let online = mean("online");
    for name in ["static-firsttouch", "static-interleave", "static-autonuma"] {
        let static_mean = mean(name);
        // 2% slack: the win must be real, not a rounding artefact.
        assert!(
            online * 100 < static_mean * 98,
            "online ({online}) must beat {name} ({static_mean}) by >2%:\n{}",
            report.table()
        );
    }
}

#[test]
fn checksum_is_advisor_independent() {
    // Re-tuning mid-run must never change answers, only cycles.
    let m = machines::numa_small;
    let static_ft =
        TuningConfig::tuned(m()).named("s").with_policy(MemPolicy::FirstTouch).env(4);
    let online = TuningConfig::tuned(m())
        .named("o")
        .with_policy(MemPolicy::FirstTouch)
        .with_advisor(AdvisorMode::Online(ControllerConfig::default()))
        .env(4);
    let a = try_run_phase_shift(&static_ft, &shift_cfg()).expect("static run completes");
    let b = try_run_phase_shift(&online, &shift_cfg()).expect("online run completes");
    assert_eq!(a.checksum, b.checksum);
}

/// Decision sequence of one online run, reconstructed from the trace.
fn decisions(trace_on: bool) -> (u64, Vec<String>) {
    let mut cfg = TuningConfig::tuned(machines::numa_small())
        .named("online")
        .with_policy(MemPolicy::FirstTouch)
        .with_advisor(AdvisorMode::Online(ControllerConfig::default()));
    if trace_on {
        cfg.sim = cfg.sim.with_trace(TraceConfig::default());
    }
    let out = try_run_phase_shift(&cfg.env(4), &shift_cfg()).expect("run completes");
    let mut seq = Vec::new();
    if let Some(log) = &out.trace {
        for r in log.events() {
            if let TraceEvent::AdvisorDecision { region, decision } = &r.event {
                seq.push(format!("{region}:{decision}"));
            }
        }
    }
    (out.exec_cycles, seq)
}

#[test]
fn tracing_does_not_change_controller_decisions() {
    let (cycles_off, _) = decisions(false);
    let (cycles_on, seq) = decisions(true);
    assert_eq!(
        cycles_off, cycles_on,
        "tracing must not perturb the model clock or the controller"
    );
    assert!(
        seq.iter().any(|d| d.contains("policy=interleave")),
        "the controller re-tuned to interleave: {seq:?}"
    );
    assert!(
        seq.iter().any(|d| d.contains("commit:placement")),
        "the probation epoch committed: {seq:?}"
    );
}

#[test]
fn online_sweep_is_byte_identical_serial_parallel_and_resumed() {
    let configs: Vec<TuningConfig> = contenders()
        .into_iter()
        .filter(|c| c.name == "online" || c.name == "static-interleave")
        .collect();
    let run_serial = |resume: &[nqp::core::TrialRecord]| {
        let mut journal = Vec::new();
        let report = sweep_supervised(
            &configs,
            4,
            2,
            &SupervisorPolicy::default(),
            resume,
            &mut |r| journal.push(r.clone()),
            |env, _| run_shift(env),
        );
        (report, journal)
    };
    let (serial, _) = run_serial(&[]);
    let parallel = sweep_parallel(
        &configs,
        4,
        2,
        &SupervisorPolicy::default(),
        &[],
        3,
        &mut |_| {},
        |env, _| run_shift(env),
    );
    assert_eq!(serial.table(), parallel.table(), "serial vs --jobs 3");
    assert_eq!(serial.to_csv(), parallel.to_csv());
    assert_eq!(serial.to_json(), parallel.to_json());

    // Kill after 1 cell, then resume from the journal.
    let interrupted = SupervisorPolicy { max_cells: Some(1), ..Default::default() };
    let mut journal = Vec::new();
    let partial = sweep_supervised(
        &configs,
        4,
        2,
        &interrupted,
        &[],
        &mut |r| journal.push(r.clone()),
        |env, _| run_shift(env),
    );
    assert!(partial.interrupted);
    let (resumed, _) = run_serial(&journal);
    assert_eq!(serial.table(), resumed.table(), "kill-and-resume differs");
    assert_eq!(serial.to_csv(), resumed.to_csv());
}

#[test]
fn adversarial_retune_rolls_back_within_one_epoch_and_quarantines() {
    // Force a deliberately bad candidate (Bind(0)) at a healthy build
    // epoch; the next epoch must roll it back and quarantine the knob.
    let cc = ControllerConfig { adversarial_epoch: Some(4), ..Default::default() };
    let mut cfg = TuningConfig::tuned(machines::numa_small())
        .named("adversarial")
        .with_policy(MemPolicy::FirstTouch)
        .with_advisor(AdvisorMode::Online(cc));
    cfg.sim = cfg.sim.with_trace(TraceConfig::default());
    let out = try_run_phase_shift(&cfg.env(4), &shift_cfg()).expect("run completes");
    let log = out.trace.expect("trace was recorded");
    let seq: Vec<(u64, String)> = log
        .events()
        .iter()
        .filter_map(|r| match &r.event {
            TraceEvent::AdvisorDecision { region, decision } => {
                Some((*region, decision.clone()))
            }
            _ => None,
        })
        .collect();
    let bad = seq
        .iter()
        .position(|(_, d)| d == "adversarial")
        .unwrap_or_else(|| panic!("adversarial epoch fired: {seq:?}"));
    let bad_region = seq[bad].0;
    let rollback = seq
        .iter()
        .find(|(_, d)| d == "rollback:placement")
        .unwrap_or_else(|| panic!("bad re-tune was rolled back: {seq:?}"));
    assert_eq!(
        rollback.0,
        bad_region + 1,
        "rollback must land on the probation epoch itself: {seq:?}"
    );
    assert!(
        seq.iter().any(|(_, d)| d == "quarantine:placement"),
        "knob quarantined: {seq:?}"
    );
    // Quarantine holds: no later placement action, even though the probe
    // phase would normally trigger one.
    assert!(
        !seq.iter().any(|(r, d)| *r > rollback.0 && d.starts_with("policy=")),
        "quarantined knob must stay untouched: {seq:?}"
    );
}

#[test]
fn controller_unit_state_machine_is_reachable_from_the_integration_crate() {
    // Cheap smoke that the public API surface composes: a controller is
    // a RegionHook and can be installed on a bare simulator.
    let mut sim = NumaSim::new(
        TuningConfig::tuned(machines::numa_small()).sim.clone(),
    );
    let ctl = OnlineController::new(ControllerConfig::default());
    assert!(!ctl.is_quarantined(Knob::Placement));
    sim.install_hook(Box::new(ctl) as Box<dyn RegionHook + Send>);
    sim.parallel(2, &mut (), |w, _| {
        w.compute(10);
    });
}
