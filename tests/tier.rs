//! Integration tests for the tiered-memory subsystem (DESIGN.md §4i).
//!
//! Three contracts are enforced here:
//!
//! 1. **The daemon earns its keep**: on `machine_b_cxl` — where the
//!    tuned interleave placement strands one page in five on the CXL
//!    expander — `hot-watermark` tiering beats `--tier none` on W3 by
//!    a real margin, visibly moves pages (`promotions > 0`), and cuts
//!    the slow-tier demand-hit ratio, all without changing the answer.
//! 2. **Tiering is deterministic**: any policy is byte-identical
//!    serial vs `--jobs N` vs `--shards N` vs killed-and-resumed, both
//!    through the library (proptest over policy parameters × shard
//!    counts) and through real `nqp-cli` artifacts.
//! 3. **`--tier none` is free**: on an all-DRAM machine the flag's
//!    presence changes no CSV byte — the tier seam costs nothing when
//!    it is not in use.

use nqp::core::TuningConfig;
use nqp::datagen::JoinDataset;
use nqp::query::run_hash_join_on;
use nqp::tier::TierSpec;
use nqp::topology::machines;
use proptest::prelude::*;
use std::path::PathBuf;
use std::process::Command;
use std::sync::atomic::{AtomicUsize, Ordering};

const SEED: u64 = 5;

/// Run W3 on the CXL machine under the tuned (interleaved) preset with
/// the given tiering policy, returning (exec_cycles, outcome).
fn w3_on_cxl(tier: TierSpec, data: &JoinDataset) -> (u64, nqp::query::JoinOutcome) {
    let cfg = TuningConfig::tuned(machines::machine_b_cxl()).with_tier(tier);
    let o = run_hash_join_on(&cfg.env(16), data);
    (o.build_cycles + o.probe_cycles, o)
}

/// The headline acceptance claim: with one page in five interleaved
/// onto the CXL expander, the hot-watermark daemon promotes the hash
/// table's hot pages back to DRAM and beats the untreated run on W3.
#[test]
fn hot_watermark_beats_none_on_w3_on_the_cxl_machine() {
    let data = JoinDataset::generate(20_000, SEED);
    let (none_cycles, none) = w3_on_cxl(TierSpec::NONE, &data);
    let hw = TierSpec::parse("hot-watermark").unwrap();
    let (hw_cycles, tiered) = w3_on_cxl(hw, &data);

    assert_eq!(none.checksum, tiered.checksum, "tiering must not change the answer");
    assert_eq!(none.matches, tiered.matches);
    assert!(
        tiered.counters.promotions > 0,
        "the daemon must actually move pages up: {:?}",
        tiered.counters
    );
    let ratio = |c: &nqp::sim::Counters| {
        let total = c.local_accesses + c.remote_accesses;
        c.slow_tier_hits as f64 / total.max(1) as f64
    };
    assert!(
        ratio(&tiered.counters) < ratio(&none.counters),
        "promotion must cut the slow-tier demand-hit ratio: tiered {:.4} vs none {:.4}",
        ratio(&tiered.counters),
        ratio(&none.counters)
    );
    // Measured ~5% on this workload; pin a conservative 2% floor so the
    // test survives small model recalibrations without going soft.
    assert!(
        hw_cycles * 100 < none_cycles * 98,
        "hot-watermark must beat none by >=2% on W3/B_CXL: tiered {hw_cycles} vs none {none_cycles}"
    );
}

/// `--tier none` on an all-DRAM machine builds no daemon at all, so the
/// simulated run is bit-identical — not merely close — to the
/// pre-tiering model.
#[test]
fn tier_none_is_identical_to_no_tier_on_all_dram() {
    let data = JoinDataset::generate(8_000, SEED);
    let base = {
        let cfg = TuningConfig::tuned(machines::machine_b());
        run_hash_join_on(&cfg.env(8), &data)
    };
    let with_flag = {
        let cfg = TuningConfig::tuned(machines::machine_b()).with_tier(TierSpec::NONE);
        run_hash_join_on(&cfg.env(8), &data)
    };
    assert_eq!(base.build_cycles, with_flag.build_cycles);
    assert_eq!(base.probe_cycles, with_flag.probe_cycles);
    assert_eq!(base.checksum, with_flag.checksum);
    assert_eq!(base.counters, with_flag.counters);
    assert_eq!(with_flag.counters.promotions, 0);
    assert_eq!(with_flag.counters.demotions, 0);
}

/// Build a spec from raw drawn parameters, through the same grammar
/// the CLI accepts (the vendored proptest shim has no `prop_oneof`, so
/// the policy arm is drawn as an integer).
fn spec_from(kind: u8, a: u64, dwm: u64, budget: u64) -> TierSpec {
    let text = match kind % 3 {
        0 => "none".to_string(),
        1 => format!("lru-epoch:idle={a},budget={budget}"),
        _ => format!("hot-watermark:pwm={a},dwm={dwm},budget={budget}"),
    };
    TierSpec::parse(&text).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any tiering policy drawn from the grammar is byte-identical at
    /// every host shard count: the daemon only sees merged epoch state,
    /// so `--shards N` must be invisible to its decisions.
    #[test]
    fn any_policy_is_shard_count_invisible(
        kind in 0u8..3,
        a in 1u64..=6,
        dwm in 1u64..=256,
        budget in 16u64..=512,
        seed in 1u64..=400,
        shards in 2usize..=4,
    ) {
        let tier = spec_from(kind, a, dwm, budget);
        let data = JoinDataset::generate(3_000, seed);
        let run = |shard_count: usize| {
            let cfg = TuningConfig::tuned(machines::machine_b_cxl()).with_tier(tier);
            let mut env = cfg.env(8);
            env.sim = env.sim.with_shards(shard_count);
            run_hash_join_on(&env, &data)
        };
        let serial = run(1);
        let sharded = run(shards);
        prop_assert_eq!(serial.build_cycles, sharded.build_cycles);
        prop_assert_eq!(serial.probe_cycles, sharded.probe_cycles);
        prop_assert_eq!(serial.checksum, sharded.checksum);
        prop_assert_eq!(serial.counters, sharded.counters);
    }

    /// The spec grammar round-trips: `parse(label(spec)) == spec`, so
    /// journals and config names can always be re-parsed.
    #[test]
    fn tier_labels_round_trip(
        kind in 0u8..3,
        a in 1u64..=6,
        dwm in 1u64..=256,
        budget in 16u64..=512,
    ) {
        let tier = spec_from(kind, a, dwm, budget);
        let reparsed = TierSpec::parse(&tier.label()).unwrap();
        prop_assert_eq!(reparsed, tier);
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("nqp-tier-{}-{tag}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Through the real binary: a knobs × tiering-policies sweep on the
/// CXL machine writes byte-identical stdout and CSV serial, under
/// `--jobs 2`, and under `--shards 2` — the tier daemon's decisions
/// ride the deterministic epoch stream, not host scheduling.
#[test]
fn cli_tier_sweep_is_byte_identical_across_jobs_and_shards() {
    let run = |extra: &[&str]| {
        let dir = temp_dir("sweep");
        let csv = dir.join("sweep.csv");
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_nqp-cli"));
        cmd.args([
            "sweep", "w3", "--machine", "machine_b_cxl", "--threads", "4", "--n", "4000",
            "--trials", "2", "--tier", "none+hot-watermark:pwm=2",
        ]);
        cmd.args(extra);
        cmd.arg("--csv").arg(&csv);
        let out = cmd.output().unwrap();
        assert!(out.status.success(), "tier sweep failed ({extra:?}): {out:?}");
        (out.stdout, std::fs::read(&csv).unwrap())
    };
    let base = run(&[]);
    for extra in [&["--jobs", "2"][..], &["--shards", "2"][..]] {
        let other = run(extra);
        assert_eq!(
            String::from_utf8_lossy(&base.0),
            String::from_utf8_lossy(&other.0),
            "tier sweep stdout diverges under {extra:?}"
        );
        assert_eq!(base.1, other.1, "tier sweep CSV diverges under {extra:?}");
    }
}

/// Kill a journaled tier sweep mid-grid, resume it, and compare with
/// an uninterrupted run: the tier policy is part of the journal's grid
/// fingerprint, so the resume must replay the exact same crossed cells.
#[test]
fn cli_killed_tier_sweep_resumes_byte_identically() {
    let dir = temp_dir("resume");
    let args = vec![
        "sweep", "w3", "--machine", "machine_b_cxl", "--threads", "4", "--n", "3000",
        "--trials", "2", "--tier", "none+lru-epoch",
    ];

    let full_csv = dir.join("full.csv");
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_nqp-cli"));
    cmd.args(&args);
    cmd.arg("--csv").arg(&full_csv);
    let uninterrupted = cmd.output().unwrap();
    assert!(uninterrupted.status.success(), "uninterrupted tier sweep failed: {uninterrupted:?}");

    let journal = dir.join("sweep.jsonl");
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_nqp-cli"));
    cmd.args(&args);
    cmd.arg("--journal").arg(&journal);
    cmd.args(["--max-cells", "2"]);
    let killed = cmd.output().unwrap();
    assert!(killed.status.success(), "interrupted tier sweep must exit clean: {killed:?}");
    assert!(
        String::from_utf8_lossy(&killed.stderr).contains("interrupted"),
        "the partial run must say it was interrupted"
    );

    let resumed_csv = dir.join("resumed.csv");
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_nqp-cli"));
    cmd.args(&args);
    cmd.arg("--resume").arg(&journal);
    cmd.arg("--csv").arg(&resumed_csv);
    let resumed = cmd.output().unwrap();
    assert!(resumed.status.success(), "resumed tier sweep failed: {resumed:?}");

    assert_eq!(
        String::from_utf8_lossy(&uninterrupted.stdout),
        String::from_utf8_lossy(&resumed.stdout),
        "resumed tier sweep stdout diverges from the uninterrupted run"
    );
    assert_eq!(
        std::fs::read(&full_csv).unwrap(),
        std::fs::read(&resumed_csv).unwrap(),
        "resumed tier sweep CSV diverges from the uninterrupted run"
    );
}

/// On an all-DRAM machine, passing `--tier none` must not perturb a
/// single CSV byte relative to omitting the flag entirely. (The CSVs
/// are compared, not journals — `--tier` legitimately enters the grid
/// fingerprint.)
#[test]
fn cli_tier_none_is_byte_identical_to_no_flag_on_all_dram() {
    let run = |tier_flag: &[&str]| {
        let dir = temp_dir("none");
        let csv = dir.join("sweep.csv");
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_nqp-cli"));
        cmd.args([
            "sweep", "w1", "--machine", "S", "--threads", "4", "--n", "3000", "--card",
            "300", "--trials", "2",
        ]);
        cmd.args(tier_flag);
        cmd.arg("--csv").arg(&csv);
        let out = cmd.output().unwrap();
        assert!(out.status.success(), "sweep failed ({tier_flag:?}): {out:?}");
        (out.stdout, std::fs::read(&csv).unwrap())
    };
    let without = run(&[]);
    let with = run(&["--tier", "none"]);
    assert_eq!(
        String::from_utf8_lossy(&without.0),
        String::from_utf8_lossy(&with.0),
        "--tier none must not change sweep stdout on an all-DRAM machine"
    );
    assert_eq!(without.1, with.1, "--tier none must not change a CSV byte");
}

/// Malformed `--tier` specs die with a typed error naming the flag and
/// the offending token; nothing runs.
#[test]
fn cli_rejects_malformed_tier_specs() {
    for bad in ["bogus", "hot-watermark:pwm=", "lru-epoch:idle=x", "hot-watermark:zzz=3", ""] {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_nqp-cli"));
        cmd.args([
            "sweep", "w1", "--machine", "machine_b_cxl", "--threads", "4", "--n", "1000",
            "--card", "100", "--trials", "1", "--tier", bad,
        ]);
        let out = cmd.output().unwrap();
        assert!(!out.status.success(), "--tier {bad:?} must be rejected");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("--tier"), "error must name the flag: {err}");
    }
}

/// An unknown machine name dies with a typed error that echoes the bad
/// token and lists every valid machine, including the tier presets.
#[test]
fn cli_rejects_unknown_machines_and_lists_the_valid_ones() {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_nqp-cli"));
    cmd.args([
        "sweep", "w1", "--machine", "machine_z", "--threads", "4", "--n", "1000", "--card",
        "100", "--trials", "1",
    ]);
    let out = cmd.output().unwrap();
    assert!(!out.status.success(), "unknown machine must be rejected");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("machine_z"), "error must echo the bad token: {err}");
    for name in nqp::topology::machines::MACHINE_NAMES {
        assert!(err.contains(name), "error must list valid machine `{name}`: {err}");
    }
}
