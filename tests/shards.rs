//! Differential tests for sharded trial execution (DESIGN.md's
//! sharded-determinism contract).
//!
//! `SimConfig::shards` / `--shards N` spreads the simulated workers of
//! one trial across N host threads. The contract: the shard count is
//! *invisible* — final clock, counters, per-region stats, trace logs,
//! merged memory state, and every CLI artifact are byte-identical for
//! any N, including N=1 (which runs the same worker-isolated semantics
//! inline without spawning). These tests drive identical programs at
//! shard counts {1, 2, 4, 7} and assert exact equality — first over
//! proptest-generated op programs through the library, then over the
//! W1–W4 workloads, then over real `nqp-cli` output: sweeps (traced,
//! faulted, with the online advisor), serve cells, and a killed-and-
//! resumed journaled sweep that mixes shard counts mid-grid.

use nqp::datagen::{generate, JoinDataset};
use nqp::indexes::IndexKind;
use nqp::query::{
    reference_checksum, reference_join, try_run_aggregation_on, try_run_hash_join_on,
    try_run_inl_join_on, AggConfig, WorkloadEnv,
};
use nqp::sim::{
    Access, Counters, FaultKind, FaultPlan, MemPolicy, NumaSim, SimConfig, SimError,
    ThreadPlacement, TraceConfig, TraceLog, Worker, SMALL_PAGE,
};
use nqp::topology::machines;
use proptest::prelude::*;
use std::path::PathBuf;
use std::process::Command;
use std::sync::atomic::{AtomicUsize, Ordering};

/// One interpreted step of the generated workload: an opcode plus two
/// operand words, decoded in `run_sharded_ops` below.
type Op = (u8, u64, u64);

/// Bytes of private arena each worker owns (writes stay disjoint, the
/// discipline every sharded phase follows).
const STRIDE: u64 = SMALL_PAGE * 4;
/// Bytes of the shared read-only arena all workers scan.
const SHARED_BYTES: u64 = SMALL_PAGE * 8;

/// The configurations under test: pinned/unpinned threads, THP,
/// AutoNUMA, both machines, an active fault plan (degraded link plus a
/// preemption storm), and a traced run — every serial-side subsystem a
/// shard merge has to reproduce exactly.
fn config(idx: usize) -> SimConfig {
    match idx {
        0 => SimConfig::os_default(machines::machine_b())
            .with_threads(ThreadPlacement::Sparse)
            .with_autonuma(false)
            .with_thp(false),
        1 => SimConfig::os_default(machines::machine_a()),
        2 => SimConfig::os_default(machines::machine_b()).with_faults(
            FaultPlan::new(17)
                .with_event(
                    0,
                    u64::MAX,
                    FaultKind::LinkDegrade { link: 1, latency_x: 2.5, bandwidth_div: 2.0 },
                )
                .with_event(
                    0,
                    u64::MAX,
                    FaultKind::PreemptionStorm { period_cycles: 30_000 },
                ),
        ),
        _ => SimConfig::os_default(machines::machine_b())
            .with_trace(TraceConfig::default().with_epoch_cycles(25_000).with_label("shards")),
    }
}

/// Interpret the op program inside a sharded worker: ranged touches,
/// typed bulk reads, RMWs, and DMA on the worker's own arena slice,
/// plus read-only scans of the shared arena. No maps/unmaps — the
/// address space must settle in a serial region (that rule has its own
/// test below). Returns a value checksum so per-worker results flow
/// through the region's return channel too.
fn run_sharded_ops(w: &mut Worker<'_>, own_base: u64, shared_base: u64, ops: &[Op]) -> u64 {
    let own = own_base + w.tid() as u64 * STRIDE;
    let salt = (w.tid() as u64).wrapping_mul(0x9e37_79b9);
    // Keep 640 bytes of headroom so multi-word accesses stay in-slice.
    let own_off = |x: u64| x.wrapping_add(salt) % (STRIDE - 640);
    let sh_off = |x: u64| x % (SHARED_BYTES - 640);
    let mut sum = 0u64;
    for &(op, a, b) in ops {
        match op % 8 {
            0 => w.touch(own + own_off(a), b % 600 + 1, Access::Read),
            1 => w.touch(own + own_off(b), a % 600 + 1, Access::Write),
            2 => {
                let mut buf = [0u64; 16];
                let n = (a % 16 + 1) as usize;
                w.read_u64_run(own + (own_off(b) & !7), &mut buf[..n]);
                sum ^= buf[0].wrapping_add(n as u64);
            }
            3 => {
                sum = sum.wrapping_add(w.rmw_u64(own + (own_off(a) & !7), |v| {
                    v.wrapping_add(b | 1)
                }));
            }
            4 => w.touch(shared_base + sh_off(a), b % 600 + 1, Access::Read),
            5 => {
                let mut buf = [0u64; 8];
                w.read_u64_run(shared_base + (sh_off(b) & !7), &mut buf);
                sum ^= buf[7].rotate_left((a % 63) as u32);
            }
            6 => w.dma_lines(own + own_off(a), b % 32 + 1),
            _ => w.write_u64_run(own + (own_off(b) & !7), &[a, b, a ^ b ^ salt]),
        }
        if w.fault().is_some() {
            return sum;
        }
    }
    sum
}

/// Run the op program at one shard count and return everything
/// observable: final clock, machine-wide counters, per-region stats
/// (via their exact Debug rendering), the per-worker return values of
/// each region, a serial read-back checksum of the *merged* memory
/// state, and the trace log (when the config records one).
#[allow(clippy::type_complexity)]
fn observe(
    cfg: SimConfig,
    threads: usize,
    shards: usize,
    ops: &[Op],
) -> (u64, Counters, Vec<String>, Vec<Vec<u64>>, u64, Option<TraceLog>) {
    let mut sim = NumaSim::new(cfg.with_shards(shards));

    // Settle the address space in a serial region: a private arena per
    // worker plus a pre-filled shared arena.
    let mut arenas = (0u64, 0u64);
    sim.serial(&mut arenas, |w, arenas| {
        arenas.0 = w.map_pages(STRIDE * 8);
        arenas.1 = w.map_pages_shared(SHARED_BYTES);
        let pattern: Vec<u64> =
            (0..512u64).map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15)).collect();
        w.write_u64_run(arenas.1, &pattern);
    });
    let (own_base, shared_base) = arenas;

    let mut stats_text = Vec::new();
    let mut region_sums = Vec::new();
    for _ in 0..2 {
        let (stats, sums) = sim
            .try_parallel_sharded(threads, ops, |w, ops| {
                run_sharded_ops(w, own_base, shared_base, ops)
            })
            .expect("op program must not fault the sharded region");
        stats_text.push(format!("{stats:?}"));
        region_sums.push(sums);
    }

    // The merged-state proof: a serial read-back of both arenas after
    // the sharded regions sees exactly the state the merges produced —
    // data bytes *and* placement, since the read-back pays the cost
    // model (page locations feed the final clock and counters).
    let mut merged = 0u64;
    sim.serial(&mut merged, |w, merged| {
        let mut buf = [0u64; 64];
        for (base, bytes) in [(own_base, STRIDE * 8), (shared_base, SHARED_BYTES)] {
            let mut addr = base;
            while addr < base + bytes {
                w.read_u64_run(addr, &mut buf);
                for v in buf {
                    *merged = merged.rotate_left(7) ^ v;
                }
                addr += 64 * 8;
            }
        }
    });

    (sim.now_cycles(), sim.counters(), stats_text, region_sums, merged, sim.take_trace())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The headline differential property: arbitrary op programs under
    /// every configuration class must produce *identical* cycles,
    /// counters, per-region stats, per-worker returns, merged memory
    /// state, and trace logs at shard counts 1, 2, 4, and 7 (7 also
    /// exercises the clamp to the thread count).
    #[test]
    fn shard_count_is_invisible(
        ops in prop::collection::vec((any::<u8>(), any::<u64>(), any::<u64>()), 1..60),
        cfg_idx in 0usize..4,
        threads in 1usize..8,
    ) {
        let base = observe(config(cfg_idx), threads, 1, &ops);
        for shards in [2usize, 4, 7] {
            let run = observe(config(cfg_idx), threads, shards, &ops);
            prop_assert_eq!(base.0, run.0, "final clock diverges at shards={}", shards);
            prop_assert_eq!(base.1, run.1, "counters diverge at shards={}", shards);
            prop_assert_eq!(&base.2, &run.2, "region stats diverge at shards={}", shards);
            prop_assert_eq!(&base.3, &run.3, "worker returns diverge at shards={}", shards);
            prop_assert_eq!(base.4, run.4, "merged memory diverges at shards={}", shards);
            prop_assert_eq!(&base.5, &run.5, "trace logs diverge at shards={}", shards);
        }
    }
}

/// Flatten a workload outcome's observables into one comparable blob.
fn digest(parts: &[String]) -> String {
    parts.join("\n")
}

/// W1 (traced, allocation-heavy) end to end: exec cycles, checksum,
/// counters, per-region stats, and the full trace log must not move at
/// any shard count — and the answers stay correct against the
/// host-side reference.
#[test]
fn w1_aggregation_is_identical_at_every_shard_count() {
    let acfg = AggConfig::w1(3_000, 150, 7);
    let records = generate(acfg.dataset, acfg.n, acfg.cardinality, acfg.seed);
    let (expect_checksum, expect_groups) = reference_checksum(&records, acfg.kind);
    let run = |shards: usize| {
        let mut env = WorkloadEnv::tuned(machines::machine_b()).with_threads(4);
        env.sim = env.sim.with_shards(shards).with_trace(
            TraceConfig::default().with_epoch_cycles(50_000).with_label("w1-shards"),
        );
        let out = try_run_aggregation_on(&env, &acfg, &records).expect("w1 runs clean");
        assert_eq!(out.checksum, expect_checksum, "shards={shards} wrong answer");
        assert_eq!(out.groups, expect_groups, "shards={shards} wrong group count");
        digest(&[
            format!("exec={} load={}", out.exec_cycles, out.load_cycles),
            format!("{:?}", out.counters),
            format!("{:?}", out.regions),
            format!("{:?}", out.trace.expect("trace was configured")),
        ])
    };
    let base = run(1);
    for shards in [2, 4, 7] {
        assert_eq!(run(shards), base, "W1 diverges at shards={shards}");
    }
}

/// W3 (hash join) and W4 (index join over ART): the sharded load and
/// probe phases reproduce the serial bytes at every shard count, with
/// answers pinned to the host-side reference join.
#[test]
fn joins_are_identical_at_every_shard_count() {
    let data = JoinDataset::generate(400, 11);
    let (expect_matches, expect_checksum) = reference_join(&data);
    let run = |shards: usize| {
        let mut env = WorkloadEnv::tuned(machines::machine_b()).with_threads(4);
        env.sim = env.sim.with_shards(shards);
        let w3 = try_run_hash_join_on(&env, &data).expect("w3 runs clean");
        assert_eq!(w3.matches, expect_matches, "shards={shards} W3 wrong matches");
        assert_eq!(w3.checksum, expect_checksum, "shards={shards} W3 wrong checksum");
        let w4 = try_run_inl_join_on(&env, IndexKind::Art, &data).expect("w4 runs clean");
        assert_eq!(w4.matches, expect_matches, "shards={shards} W4 wrong matches");
        assert_eq!(w4.checksum, expect_checksum, "shards={shards} W4 wrong checksum");
        digest(&[
            format!("w3 build={} probe={} load={}", w3.build_cycles, w3.probe_cycles, w3.load_cycles),
            format!("{:?}", w3.counters),
            format!("w4 build={} join={}", w4.build_cycles, w4.join_cycles),
            format!("{:?}", w4.counters),
        ])
    };
    let base = run(1);
    for shards in [2, 4, 7] {
        assert_eq!(run(shards), base, "joins diverge at shards={shards}");
    }
}

/// Chaos parity: a node dies mid-run and its pages evacuate. The
/// evacuation happens on the serial side of a region boundary, so the
/// degraded run — evacuated pages, rerouted accesses, final cycles —
/// must also be byte-identical at every shard count.
#[test]
fn node_outage_is_identical_at_every_shard_count() {
    let acfg = AggConfig::w2(4_000, 300, 5);
    let records = generate(acfg.dataset, acfg.n, acfg.cardinality, acfg.seed);
    let run = |shards: usize| {
        let outage = FaultPlan::new(5).with_event(2, 2, FaultKind::NodeOffline { node: 1 });
        let mut env = WorkloadEnv::os_default(machines::machine_b()).with_threads(4);
        env.sim = env
            .sim
            .with_policy(MemPolicy::Interleave)
            .with_faults(outage)
            .with_shards(shards);
        let out = try_run_aggregation_on(&env, &acfg, &records).expect("degrades, not dies");
        assert!(out.counters.evacuated_pages > 0, "shards={shards}: outage must evacuate");
        digest(&[
            format!("exec={} checksum={}", out.exec_cycles, out.checksum),
            format!("{:?}", out.counters),
            format!("{:?}", out.regions),
        ])
    };
    let base = run(1);
    for shards in [2, 4, 7] {
        assert_eq!(run(shards), base, "outage run diverges at shards={shards}");
    }
}

/// mmap/munmap inside a sharded region is a *typed* harness fault at
/// every shard count — including 1, so the rule can't hide until
/// someone passes `--shards 2`.
#[test]
fn map_inside_a_sharded_region_is_a_typed_fault() {
    for shards in [1usize, 4] {
        let mut sim =
            NumaSim::new(SimConfig::os_default(machines::machine_b()).with_shards(shards));
        let err = sim
            .try_parallel_sharded(4, &(), |w, ()| {
                w.map_pages(SMALL_PAGE);
            })
            .expect_err("mapping inside a sharded region must fault");
        match err {
            SimError::Harness { what } => assert!(
                what.contains("sharded"),
                "shards={shards}: fault must name the sharded-region rule: {what}"
            ),
            other => panic!("shards={shards}: expected a harness fault, got {other:?}"),
        }
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("nqp-shards-{}-{tag}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn read_artifacts(dir: &std::path::Path) -> Vec<(String, Vec<u8>)> {
    let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| {
            let e = e.unwrap();
            (e.file_name().to_string_lossy().into_owned(), std::fs::read(e.path()).unwrap())
        })
        .collect();
    files.sort();
    files
}

/// Through the real binary: a traced sweep with the online advisor in
/// the grid writes byte-identical stdout, CSV, and `.trace` artifacts
/// at `--shards 1`, `2`, and `4` — advisor decisions included, since a
/// diverged decision would move the traced cycle numbers.
#[test]
fn cli_sweep_is_byte_identical_across_shards() {
    let run = |shards: &str| {
        let dir = temp_dir(&format!("sweep-s{shards}"));
        let csv = dir.join("sweep.csv");
        let trace_dir = dir.join("traces");
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_nqp-cli"));
        cmd.args([
            "sweep", "w1", "--machine", "B", "--threads", "4", "--n", "4000", "--card",
            "400", "--trials", "2", "--advisor", "online", "--shards", shards,
        ]);
        cmd.arg("--csv").arg(&csv);
        cmd.arg("--trace-dir").arg(&trace_dir);
        let out = cmd.output().unwrap();
        assert!(out.status.success(), "sweep failed (shards={shards}): {out:?}");
        (out.stdout, std::fs::read(&csv).unwrap(), read_artifacts(&trace_dir))
    };
    let base = run("1");
    assert_eq!(base.2.len(), 6, "expected 3 configs x 2 trials of trace artifacts");
    for shards in ["2", "4"] {
        let other = run(shards);
        assert_eq!(
            String::from_utf8_lossy(&base.0),
            String::from_utf8_lossy(&other.0),
            "sweep stdout diverges at --shards {shards}"
        );
        assert_eq!(base.1, other.1, "sweep CSV diverges at --shards {shards}");
        assert_eq!(base.2, other.2, "trace artifacts diverge at --shards {shards}");
    }
}

/// Kill a journaled `--shards 4` sweep after one cell, resume it at
/// `--shards 2`, and compare with an uninterrupted `--shards 1` run:
/// the journal fingerprint must admit the mixed-shard resume (shard
/// count is not part of the grid) and the final table, stdout, and CSV
/// must be byte-identical to the run that was never interrupted.
#[test]
fn cli_killed_sweep_resumes_across_shard_counts() {
    let dir = temp_dir("resume");
    let args = |shards: &str| {
        vec![
            "sweep".to_string(), "w2".into(), "--machine".into(), "B".into(),
            "--threads".into(), "4".into(), "--n".into(), "3000".into(),
            "--card".into(), "300".into(), "--trials".into(), "2".into(),
            "--shards".into(), shards.into(),
        ]
    };

    let uninterrupted_csv = dir.join("full.csv");
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_nqp-cli"));
    cmd.args(args("1"));
    cmd.arg("--csv").arg(&uninterrupted_csv);
    let uninterrupted = cmd.output().unwrap();
    assert!(uninterrupted.status.success(), "uninterrupted sweep failed: {uninterrupted:?}");

    let journal = dir.join("sweep.jsonl");
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_nqp-cli"));
    cmd.args(args("4"));
    cmd.arg("--journal").arg(&journal);
    cmd.args(["--max-cells", "1"]);
    let killed = cmd.output().unwrap();
    assert!(killed.status.success(), "interrupted sweep must exit clean: {killed:?}");
    assert!(
        String::from_utf8_lossy(&killed.stderr).contains("interrupted"),
        "the partial run must say it was interrupted"
    );

    let resumed_csv = dir.join("resumed.csv");
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_nqp-cli"));
    cmd.args(args("2"));
    cmd.arg("--resume").arg(&journal);
    cmd.arg("--csv").arg(&resumed_csv);
    let resumed = cmd.output().unwrap();
    assert!(resumed.status.success(), "resumed sweep failed: {resumed:?}");

    assert_eq!(
        String::from_utf8_lossy(&uninterrupted.stdout),
        String::from_utf8_lossy(&resumed.stdout),
        "resumed stdout diverges from the uninterrupted run"
    );
    assert_eq!(
        std::fs::read(&uninterrupted_csv).unwrap(),
        std::fs::read(&resumed_csv).unwrap(),
        "resumed CSV diverges from the uninterrupted run"
    );
}

/// The serve path calibrates its class profiles by running the real
/// engine — through the sharded region code when `--shards` is set —
/// so serve reports must also be byte-identical at every shard count.
#[test]
fn cli_serve_is_byte_identical_across_shards() {
    let run = |shards: &str| {
        let dir = temp_dir(&format!("serve-s{shards}"));
        let csv = dir.join("serve.csv");
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_nqp-cli"));
        cmd.args([
            "serve", "w1", "--machine", "B", "--threads", "4", "--n", "3000", "--card",
            "300", "--tenants", "3", "--duration", "20", "--shards", shards,
        ]);
        cmd.arg("--csv").arg(&csv);
        let out = cmd.output().unwrap();
        assert!(out.status.success(), "serve failed (shards={shards}): {out:?}");
        (out.stdout, std::fs::read(&csv).unwrap())
    };
    let base = run("1");
    for shards in ["2", "4"] {
        let other = run(shards);
        assert_eq!(
            String::from_utf8_lossy(&base.0),
            String::from_utf8_lossy(&other.0),
            "serve stdout diverges at --shards {shards}"
        );
        assert_eq!(base.1, other.1, "serve CSV diverges at --shards {shards}");
    }
}

/// `--shards` rejects zero and garbage with a typed CLI error, nonzero
/// exit, and no partial output.
#[test]
fn cli_rejects_bad_shard_counts() {
    for bad in ["0", "x", "-1"] {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_nqp-cli"));
        cmd.args([
            "sweep", "w1", "--machine", "B", "--threads", "4", "--n", "1000", "--card",
            "100", "--trials", "1", "--shards", bad,
        ]);
        let out = cmd.output().unwrap();
        assert!(!out.status.success(), "--shards {bad} must be rejected");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("--shards"), "error must name the flag: {err}");
    }
}
