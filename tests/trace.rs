//! Integration tests for the nqp-trace subsystem, end to end: real
//! traced workloads through the library, real `.trace` artifacts on
//! disk written by the real `nqp-cli` binary.
//!
//! Two contracts under test, straight from DESIGN.md's observability
//! section:
//!
//! 1. **Replay exactness** — the Table III report rendered from a
//!    recorded trace (the telescoping sum of its epoch samples) is
//!    byte-equal to the same report rendered from the live simulator's
//!    counter totals. No drift, no rounding, no lost charges.
//! 2. **Artifact determinism** — `sweep --trace-dir` writes
//!    byte-identical artifacts whether the sweep runs serially, under
//!    `--jobs N`, or interrupted-then-resumed; and enabling tracing
//!    never changes the sweep's cycle results.

use nqp::core::TuningConfig;
use nqp::datagen::generate;
use nqp::query::{try_run_aggregation_on, AggConfig};
use nqp::sim::TraceConfig;
use nqp::topology::machines;
use nqp::trace::{artifact_name, counters_report, slug, Trace, TraceMeta};
use std::path::PathBuf;
use std::process::Command;
use std::sync::atomic::{AtomicUsize, Ordering};

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "nqp-trace-{}-{tag}-{n}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Run a traced W1 and return the artifact built from its trace log.
fn traced_w1() -> (Trace, nqp::sim::TraceLog) {
    let mut cfg = TuningConfig::tuned(machines::machine_b());
    cfg.sim = cfg
        .sim
        .with_trace(TraceConfig::default().with_epoch_cycles(50_000).with_label("w1-tuned"));
    let acfg = AggConfig::w1(3_000, 150, 7);
    let records = generate(acfg.dataset, acfg.n, acfg.cardinality, acfg.seed);
    let out = try_run_aggregation_on(&cfg.env(4), &acfg, &records).unwrap();
    let log = out.trace.expect("trace was configured, so the outcome must carry a log");
    let meta = TraceMeta {
        label: "w1-tuned".to_string(),
        trial: 0,
        machine: "B".to_string(),
        threads: 4,
    };
    (Trace::from_log(meta, &log), log)
}

/// Contract 1: the report replayed from a *parsed* artifact (epoch
/// samples only) is byte-equal to the report over the totals the live
/// simulator recorded at `take_trace` time. This is exact equality of
/// every counter, not approximate agreement.
#[test]
fn replayed_report_equals_live_totals_exactly() {
    let (artifact, log) = traced_w1();
    let live_totals = log.totals();

    // The telescoping sum of samples reproduces the live totals...
    assert_eq!(artifact.sampled_totals(), live_totals);

    // ...and survives serialisation: parse(to_text(x)) loses nothing.
    let round_tripped = Trace::parse(&artifact.to_text()).unwrap();
    assert_eq!(round_tripped.sampled_totals(), live_totals);
    assert_eq!(round_tripped.totals, live_totals);

    // The headline byte-equality: Table III from recorded data ==
    // Table III from live counters.
    let live_report = counters_report(
        "'w1-tuned' (trial 0, machine B, 4 threads)",
        log.end_cycles(),
        &live_totals,
    );
    assert_eq!(round_tripped.perf_report(), live_report);
}

/// Tracing is pay-for-what-you-use at the library level too: a traced
/// run and an untraced run of the same workload report identical
/// cycles and counters.
#[test]
fn tracing_does_not_change_simulation_results() {
    let acfg = AggConfig::w1(3_000, 150, 7);
    let records = generate(acfg.dataset, acfg.n, acfg.cardinality, acfg.seed);

    let plain_cfg = TuningConfig::tuned(machines::machine_b());
    let plain = try_run_aggregation_on(&plain_cfg.env(4), &acfg, &records).unwrap();
    assert!(plain.trace.is_none(), "no trace configured, none returned");

    let mut traced_cfg = TuningConfig::tuned(machines::machine_b());
    traced_cfg.sim = traced_cfg.sim.with_trace(TraceConfig::default());
    let traced = try_run_aggregation_on(&traced_cfg.env(4), &acfg, &records).unwrap();

    assert_eq!(traced.exec_cycles, plain.exec_cycles);
    assert_eq!(traced.load_cycles, plain.load_cycles);
    assert_eq!(traced.counters, plain.counters);
    assert_eq!(traced.checksum, plain.checksum);
}

/// The recorded phase spans nest and cover the run: `load` comes
/// first, the three aggregation phases follow, and every span closes
/// at or before the recorded end of the run.
#[test]
fn phase_spans_cover_the_aggregation_pipeline() {
    let (artifact, _) = traced_w1();
    let names: Vec<&str> = artifact.spans.iter().map(|s| s.name.as_str()).collect();
    for expected in ["load", "agg:init", "agg:build", "agg:finalize"] {
        assert!(names.contains(&expected), "missing span `{expected}` in {names:?}");
    }
    for s in &artifact.spans {
        assert!(s.begin_cycles <= s.end_cycles, "span {s:?} runs backwards");
        assert!(s.end_cycles <= artifact.end_cycles, "span {s:?} outlives the run");
    }
}

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_nqp-cli"))
}

fn sweep_args(dir: &std::path::Path, extra: &[&str]) -> Vec<String> {
    let mut args: Vec<String> = [
        "sweep", "w2", "--machine", "B", "--threads", "4", "--n", "6000", "--card",
        "600", "--trials", "2", "--trace-dir",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    args.push(dir.display().to_string());
    args.extend(extra.iter().map(|s| s.to_string()));
    args
}

fn read_artifacts(dir: &std::path::Path) -> Vec<(String, Vec<u8>)> {
    let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| {
            let e = e.unwrap();
            (e.file_name().to_string_lossy().into_owned(), std::fs::read(e.path()).unwrap())
        })
        .collect();
    files.sort();
    files
}

/// Contract 2, through the real binary: serial, parallel, and
/// kill-then-resume sweeps write byte-identical trace artifacts under
/// deterministic names.
#[test]
fn sweep_trace_artifacts_are_byte_identical_serial_parallel_resumed() {
    let serial_dir = temp_dir("serial");
    let out = cli().args(sweep_args(&serial_dir, &[])).output().unwrap();
    assert!(out.status.success(), "serial sweep failed: {out:?}");
    let serial = read_artifacts(&serial_dir);
    // 2 configs x 2 trials, named from the cell coordinates alone.
    let expected: Vec<&String> = serial.iter().map(|(n, _)| n).collect();
    assert_eq!(
        expected,
        vec![
            &artifact_name("os-default (+flags)", 0),
            &artifact_name("os-default (+flags)", 1),
            &artifact_name("tuned (+flags)", 0),
            &artifact_name("tuned (+flags)", 1),
        ]
    );
    assert_eq!(slug("os-default (+flags)"), "os-default_flags");

    // Parallel: same cells, same bytes, any job count.
    let par_dir = temp_dir("jobs4");
    let out = cli().args(sweep_args(&par_dir, &["--jobs", "4"])).output().unwrap();
    assert!(out.status.success(), "parallel sweep failed: {out:?}");
    assert_eq!(read_artifacts(&par_dir), serial);

    // Interrupted after 2 cells, then resumed: the resumed run fills in
    // exactly the missing artifacts and the directory converges.
    let res_dir = temp_dir("resumed");
    let journal = res_dir.join("sweep.journal");
    let jflag = journal.display().to_string();
    let out = cli()
        .args(sweep_args(&res_dir, &["--journal", &jflag, "--max-cells", "2"]))
        .output()
        .unwrap();
    assert!(out.status.success(), "interrupted sweep failed: {out:?}");
    assert_eq!(read_artifacts(&res_dir).len(), 3, "2 artifacts + the journal");
    let out = cli().args(sweep_args(&res_dir, &["--resume", &jflag])).output().unwrap();
    assert!(out.status.success(), "resumed sweep failed: {out:?}");
    std::fs::remove_file(&journal).unwrap();
    assert_eq!(read_artifacts(&res_dir), serial);

    for d in [serial_dir, par_dir, res_dir] {
        std::fs::remove_dir_all(d).ok();
    }
}

/// Enabling `--trace-dir` must not move a single cycle: the sweep CSV
/// with tracing on is byte-identical to the CSV with tracing off.
#[test]
fn trace_dir_does_not_change_sweep_results() {
    let dir = temp_dir("perturb");
    let plain_csv = dir.join("plain.csv");
    let traced_csv = dir.join("traced.csv");
    let base = [
        "sweep", "w2", "--machine", "B", "--threads", "4", "--n", "6000", "--card",
        "600", "--trials", "2",
    ];
    let out = cli()
        .args(base)
        .args(["--csv", &plain_csv.display().to_string()])
        .output()
        .unwrap();
    assert!(out.status.success(), "plain sweep failed: {out:?}");
    let out = cli()
        .args(base)
        .args(["--csv", &traced_csv.display().to_string()])
        .args(["--trace-dir", &dir.join("traces").display().to_string()])
        .output()
        .unwrap();
    assert!(out.status.success(), "traced sweep failed: {out:?}");
    assert_eq!(
        std::fs::read(&plain_csv).unwrap(),
        std::fs::read(&traced_csv).unwrap(),
        "tracing perturbed the sweep's results"
    );
    std::fs::remove_dir_all(dir).ok();
}

/// The `trace` subcommand renders a recorded artifact: the default
/// report carries the perf-stat shape, and `--chrome` emits JSON that
/// Perfetto's trace_event importer accepts structurally.
#[test]
fn trace_subcommand_renders_and_converts() {
    let dir = temp_dir("render");
    let out = cli().args(sweep_args(&dir, &[])).output().unwrap();
    assert!(out.status.success(), "sweep failed: {out:?}");
    let artifact = dir.join(artifact_name("tuned (+flags)", 0));

    let out = cli().args(["trace", &artifact.display().to_string()]).output().unwrap();
    assert!(out.status.success(), "trace render failed: {out:?}");
    let report = String::from_utf8(out.stdout).unwrap();
    assert!(report.contains("Performance counter stats for"), "{report}");
    assert!(report.contains("cycles elapsed (model)"), "{report}");
    assert!(report.contains("local-access-ratio"), "{report}");

    let chrome = dir.join("out.json");
    let csv = dir.join("out.csv");
    let out = cli()
        .args(["trace", &artifact.display().to_string()])
        .args(["--chrome", &chrome.display().to_string()])
        .args(["--csv", &csv.display().to_string()])
        .output()
        .unwrap();
    assert!(out.status.success(), "trace convert failed: {out:?}");
    let json = std::fs::read_to_string(&chrome).unwrap();
    assert!(json.starts_with("{\"traceEvents\":["), "{json}");
    assert!(json.contains("\"ph\":\"X\""), "no span events in {json}");
    let csv_text = std::fs::read_to_string(&csv).unwrap();
    assert!(csv_text.starts_with("epoch,start_cycles,end_cycles,"), "{csv_text}");
    std::fs::remove_dir_all(dir).ok();
}
