//! Integration tests asserting the paper's *directional* findings hold
//! end-to-end, at small scale. These are the claims DESIGN.md commits
//! the reproduction to; the bench harnesses print the full tables.

use nqp::alloc::AllocatorKind;
use nqp::core::advisor::{advise, WorkloadProfile};
use nqp::core::TuningConfig;
use nqp::datagen::{generate, Dataset, JoinDataset};
use nqp::query::{run_aggregation_on, run_hash_join_on, AggConfig, WorkloadEnv};
use nqp::sim::{MemPolicy, ThreadPlacement};
use nqp::topology::machines;

const N: usize = 200_000;
const CARD: u64 = 60_000;
const SEED: u64 = 5;

fn w1_records() -> Vec<nqp::datagen::Record> {
    generate(Dataset::MovingCluster, N, CARD, SEED)
}

fn w1_cycles(cfg: TuningConfig) -> u64 {
    let records = w1_records();
    run_aggregation_on(&cfg.env(16), &AggConfig::w1(N, CARD, SEED), &records).exec_cycles
}

#[test]
fn tuned_beats_os_default_on_w1() {
    // The headline: the default environment is badly sub-optimal.
    let default = w1_cycles(TuningConfig::os_default(machines::machine_a()));
    let tuned = w1_cycles(TuningConfig::tuned(machines::machine_a()));
    assert!(
        default > 2 * tuned,
        "default {default} should dwarf tuned {tuned}"
    );
}

#[test]
fn autonuma_slows_w1_while_raising_lar() {
    // Figure 5a/5b: LAR is not a performance predictor.
    let records = w1_records();
    let run = |autonuma: bool| {
        let c = TuningConfig::os_default(machines::machine_a())
            .with_threads(ThreadPlacement::Sparse)
            .with_autonuma(autonuma)
            .with_thp(false);
        run_aggregation_on(&c.env(16), &AggConfig::w1(N, CARD, SEED), &records)
    };
    let on = run(true);
    let off = run(false);
    assert!(on.exec_cycles > off.exec_cycles, "AutoNUMA must cost time");
    assert!(
        on.counters.local_access_ratio() > off.counters.local_access_ratio(),
        "AutoNUMA must raise LAR even while slowing the workload"
    );
}

#[test]
fn interleave_with_switches_off_is_the_best_policy_on_machine_a() {
    // Figure 5a: the recommended combination.
    let records = w1_records();
    let run = |policy| {
        let c = TuningConfig::os_default(machines::machine_a())
            .with_threads(ThreadPlacement::Sparse)
            .with_policy(policy)
            .with_autonuma(false)
            .with_thp(false);
        run_aggregation_on(&c.env(16), &AggConfig::w1(N, CARD, SEED), &records).exec_cycles
    };
    let interleave = run(MemPolicy::Interleave);
    for policy in [MemPolicy::FirstTouch, MemPolicy::Localalloc, MemPolicy::Preferred(0)] {
        assert!(
            run(policy) > interleave,
            "{policy:?} should lose to Interleave on Machine A"
        );
    }
}

#[test]
fn sparse_beats_dense_below_full_occupancy() {
    // Figure 4 at 4 of 16 hardware threads.
    let records = w1_records();
    let run = |placement| {
        let c = TuningConfig::os_default(machines::machine_a())
            .with_threads(placement)
            .with_autonuma(false)
            .with_thp(false);
        run_aggregation_on(&c.env(4), &AggConfig::w1(N, CARD, SEED), &records).exec_cycles
    };
    assert!(run(ThreadPlacement::Sparse) < run(ThreadPlacement::Dense));
}

#[test]
fn thp_taxes_the_page_granular_allocators_most() {
    // Figure 5c: jemalloc/tcmalloc/tbbmalloc suffer more than ptmalloc.
    let records = w1_records();
    let penalty = |alloc: AllocatorKind| {
        let run = |thp: bool| {
            let c = TuningConfig::os_default(machines::machine_a())
                .with_threads(ThreadPlacement::Sparse)
                .with_autonuma(false)
                .with_thp(thp)
                .with_allocator(alloc);
            run_aggregation_on(&c.env(16), &AggConfig::w1(N, CARD, SEED), &records).exec_cycles
        };
        run(true) as f64 / run(false) as f64
    };
    let pt = penalty(AllocatorKind::Ptmalloc);
    for unfriendly in [AllocatorKind::Jemalloc, AllocatorKind::Tcmalloc] {
        assert!(
            penalty(unfriendly) > pt,
            "{unfriendly:?} must pay a larger THP penalty than ptmalloc"
        );
    }
    // tbbmalloc's THP tax concentrates on its rare slow path; at this
    // test's small scale it shows as parity rather than a clear penalty
    // (the Figure 5c bench at full scale shows the gap).
    assert!(
        penalty(AllocatorKind::Tbbmalloc) > pt * 0.99,
        "tbbmalloc must not beat ptmalloc under THP"
    );
}

#[test]
fn unbound_scheduling_is_slower_and_jittery() {
    // Figure 3: every unbound run loses to the affinitized baseline and
    // run-to-run variance is large.
    let records = w1_records();
    let cfg = AggConfig::w1(N, CARD, SEED);
    let base = TuningConfig::os_default(machines::machine_a())
        .with_threads(ThreadPlacement::Sparse);
    let baseline = run_aggregation_on(&base.env(16), &cfg, &records).exec_cycles;
    let mut rels = Vec::new();
    for run in 0..5u64 {
        let unbound = TuningConfig::os_default(machines::machine_a())
            .with_threads(ThreadPlacement::None);
        let mut env = unbound.env(16);
        env.sim = env.sim.with_seed(77 + run);
        let out = run_aggregation_on(&env, &cfg, &records);
        rels.push(out.exec_cycles as f64 / baseline as f64);
        assert!(
            out.counters.thread_migrations > 0,
            "unbound threads must migrate"
        );
    }
    let mean = rels.iter().sum::<f64>() / rels.len() as f64;
    let min = rels.iter().cloned().fold(f64::MAX, f64::min);
    let max = rels.iter().cloned().fold(f64::MIN, f64::max);
    assert!(mean > 1.2, "unbound should lose on average: {rels:?}");
    assert!(max > 2.0 * min, "jitter should be pronounced: {rels:?}");
}

#[test]
fn w3_gains_exceed_w4_style_prebuilt_workloads() {
    // §IV-F: allocation-heavy W3 gains more from tbbmalloc than the
    // pre-built-index W4 does.
    let data = JoinDataset::generate(20_000, SEED);
    let run_w3 = |alloc| {
        let c = TuningConfig::tuned(machines::machine_a()).with_allocator(alloc);
        let o = run_hash_join_on(&c.env(16), &data);
        o.build_cycles + o.probe_cycles
    };
    let run_w4 = |alloc| {
        let c = TuningConfig::tuned(machines::machine_a()).with_allocator(alloc);
        nqp::query::run_inl_join_on(&c.env(16), nqp::indexes::IndexKind::BPlusTree, &data)
            .join_cycles
    };
    let w3_gain = run_w3(AllocatorKind::Ptmalloc) as f64 / run_w3(AllocatorKind::Tbbmalloc) as f64;
    let w4_gain = run_w4(AllocatorKind::Ptmalloc) as f64 / run_w4(AllocatorKind::Tbbmalloc) as f64;
    assert!(w3_gain > 1.0, "tbbmalloc must help the hash join: {w3_gain}");
    assert!(
        w3_gain > w4_gain,
        "allocation-heavy W3 ({w3_gain:.3}) must gain more than prebuilt W4 ({w4_gain:.3})"
    );
}

#[test]
fn advisor_plan_delivers_a_large_speedup() {
    // Figure 10 validation.
    let records = w1_records();
    let cfg = AggConfig::w1(N, CARD, SEED);
    let default = TuningConfig::os_default(machines::machine_a());
    let d = run_aggregation_on(&default.env(16), &cfg, &records);
    let plan = advise(&WorkloadProfile::analytics_default());
    let advised = WorkloadEnv {
        sim: plan.apply(default.sim.clone()),
        allocator: plan.allocator_or_default(),
        threads: 16,
        engine: nqp::query::EngineKind::Tuple,
        batch: nqp::query::DEFAULT_BATCH_SIZE,
    };
    let a = run_aggregation_on(&advised, &cfg, &records);
    assert_eq!(d.checksum, a.checksum, "tuning must not change results");
    assert!(
        d.exec_cycles > 3 * a.exec_cycles,
        "advice should speed W1 up several times: {} vs {}",
        d.exec_cycles,
        a.exec_cycles
    );
}

#[test]
fn machine_b_gains_least_from_tuning() {
    // Figure 5d: machine B's flat topology caps its improvement. The
    // comparison pins threads on both sides (Sparse) so the scheduler
    // lottery of the unbound default doesn't add machine-dependent noise.
    let gain = |machine: nqp::topology::MachineSpec| {
        let threads = machine.total_hw_threads();
        let records = w1_records();
        let cfg = AggConfig::w1(N, CARD, SEED);
        let d = run_aggregation_on(
            &TuningConfig::os_default(machine.clone())
                .with_threads(ThreadPlacement::Sparse)
                .env(threads),
            &cfg,
            &records,
        )
        .exec_cycles;
        let t = run_aggregation_on(&TuningConfig::tuned(machine).env(threads), &cfg, &records)
            .exec_cycles;
        d as f64 / t as f64
    };
    let a = gain(machines::machine_a());
    let b = gain(machines::machine_b());
    assert!(a > b, "machine A ({a:.2}x) should out-gain machine B ({b:.2}x)");
}

#[test]
fn numa_effects_vanish_on_a_uniform_machine() {
    // Control experiment: on the single-node UMA preset, memory policy
    // makes no difference and every DRAM access is local.
    let records = w1_records();
    let cfg = AggConfig::w1(N, CARD, SEED);
    let run = |policy| {
        let c = TuningConfig::os_default(machines::by_name("UMA").expect("preset"))
            .with_threads(ThreadPlacement::Sparse)
            .with_policy(policy)
            .with_autonuma(false)
            .with_thp(false);
        run_aggregation_on(&c.env(8), &cfg, &records)
    };
    let ft = run(MemPolicy::FirstTouch);
    let il = run(MemPolicy::Interleave);
    assert_eq!(ft.exec_cycles, il.exec_cycles, "policies must tie on UMA");
    assert_eq!(ft.counters.remote_accesses, 0);
    assert!((ft.counters.local_access_ratio() - 1.0).abs() < 1e-12);
}

#[test]
fn application_level_table_interleaving_mitigates_first_touch() {
    // The related-work tweak ([9][31][32]): interleaving just the shared
    // hash table recovers a good share of the Interleave policy's win
    // without touching numactl.
    let records = w1_records();
    let run = |interleaved_table: bool, policy: MemPolicy| {
        let mut cfg = AggConfig::w1(N, CARD, SEED);
        cfg.interleaved_table = interleaved_table;
        let c = TuningConfig::os_default(machines::machine_a())
            .with_threads(ThreadPlacement::Sparse)
            .with_policy(policy)
            .with_autonuma(false)
            .with_thp(false);
        run_aggregation_on(&c.env(16), &cfg, &records).exec_cycles
    };
    let ft_plain = run(false, MemPolicy::FirstTouch);
    let ft_smart = run(true, MemPolicy::FirstTouch);
    let il = run(false, MemPolicy::Interleave);
    assert!(ft_smart < ft_plain, "table interleaving must help under FT");
    // It should close at least half the FT-vs-Interleave gap.
    assert!(
        (ft_plain - ft_smart) * 2 >= ft_plain.saturating_sub(il),
        "ft_plain={ft_plain} ft_smart={ft_smart} il={il}"
    );
}
