//! Cross-crate integration checks: independent oracles for TPC-H plans
//! and end-to-end agreement between workload implementations.

use nqp::datagen::tpch::{dates, TpchData};
use nqp::datagen::JoinDataset;
use nqp::engines::{DbSystem, SystemKind, Value};
use nqp::indexes::IndexKind;
use nqp::query::{
    reference_join, run_hash_join_on, run_inl_join_on, WorkloadEnv,
};
use nqp::topology::machines;

fn env() -> WorkloadEnv {
    WorkloadEnv::tuned(machines::machine_b()).with_threads(4)
}

fn tpch() -> TpchData {
    TpchData::generate(0.003, 21)
}

/// Q6 re-derived with a straight-line iterator, independent of the
/// engine's operator toolkit.
#[test]
fn q6_matches_an_independent_oracle() {
    let data = tpch();
    let (lo, hi) = (dates::parse("1994-01-01").expect("static literal"), dates::parse("1995-01-01").expect("static literal"));
    let expect: i64 = (0..data.lineitem.l_orderkey.len())
        .filter(|&i| {
            let l = &data.lineitem;
            l.l_shipdate[i] >= lo
                && l.l_shipdate[i] < hi
                && (5..=7).contains(&l.l_discount[i])
                && l.l_quantity[i] < 24
        })
        .map(|i| data.lineitem.l_extendedprice[i] * data.lineitem.l_discount[i])
        .sum();
    let mut db = DbSystem::boot(SystemKind::QuickstepLike, &env(), &data);
    let rows = db.run(6).rows;
    assert_eq!(rows, vec![vec![Value::I(expect)]]);
}

/// Q1's per-group counts must sum to the number of qualifying lineitems,
/// and the group keys must be exactly the distinct (flag, status) pairs.
#[test]
fn q1_groups_cover_the_qualifying_lineitems() {
    let data = tpch();
    let cutoff = dates::parse("1998-12-01").expect("static literal") - 90;
    let qualifying = data
        .lineitem
        .l_shipdate
        .iter()
        .filter(|&&d| d <= cutoff)
        .count() as i64;
    let mut db = DbSystem::boot(SystemKind::MonetDbLike, &env(), &data);
    let rows = db.run(1).rows;
    let total: i64 = rows.iter().map(|r| r.last().expect("count column").as_i()).sum();
    assert_eq!(total, qualifying);
    let mut keys: Vec<(String, String)> = rows
        .iter()
        .map(|r| (r[0].as_s().to_string(), r[1].as_s().to_string()))
        .collect();
    keys.dedup();
    assert_eq!(keys.len(), rows.len(), "duplicate groups");
    let sorted = {
        let mut k = keys.clone();
        k.sort();
        k
    };
    assert_eq!(keys, sorted, "groups must come out sorted");
}

/// Q14 re-derived independently: promo share scaled by 1e4.
#[test]
fn q14_matches_an_independent_oracle() {
    let data = tpch();
    let (lo, hi) = (dates::parse("1995-09-01").expect("static literal"), dates::parse("1995-10-01").expect("static literal"));
    let mut promo = 0i64;
    let mut total = 0i64;
    for i in 0..data.lineitem.l_orderkey.len() {
        let l = &data.lineitem;
        if l.l_shipdate[i] < lo || l.l_shipdate[i] >= hi {
            continue;
        }
        let r = l.l_extendedprice[i] * (100 - l.l_discount[i]) / 100;
        let ptype = &data.part.p_type[(l.l_partkey[i] - 1) as usize];
        if ptype.starts_with("PROMO") {
            promo += r;
        }
        total += r;
    }
    let expect = if total == 0 { 0 } else { (promo as i128 * 10_000 / total as i128) as i64 };
    let mut db = DbSystem::boot(SystemKind::DbmsX, &env(), &data);
    assert_eq!(db.run(14).rows, vec![vec![Value::I(expect)]]);
}

/// W3 and W4 must join identically (same checksum) across every index,
/// and match the host-side reference, under *different* machines.
#[test]
fn joins_agree_across_implementations_and_machines() {
    let data = JoinDataset::generate(1_000, 17);
    let (matches, checksum) = reference_join(&data);
    for machine in machines::paper_machines() {
        let env = WorkloadEnv::tuned(machine).with_threads(8);
        let w3 = run_hash_join_on(&env, &data);
        assert_eq!((w3.matches, w3.checksum), (matches, checksum));
        for kind in IndexKind::ALL {
            let w4 = run_inl_join_on(&env, kind, &data);
            assert_eq!((w4.matches, w4.checksum), (matches, checksum), "{kind:?}");
        }
    }
}

/// Booting the same system twice on the same data reproduces identical
/// latencies (whole-stack determinism).
#[test]
fn whole_stack_is_deterministic() {
    let data = tpch();
    let run = || {
        let mut db = DbSystem::boot(SystemKind::PostgresLike, &env(), &data);
        [3usize, 13, 22].map(|q| db.run(q).latency_cycles)
    };
    assert_eq!(run(), run());
}

/// The W5 tuned environment never changes any query's result rows.
#[test]
fn tuning_never_changes_w5_results() {
    let data = tpch();
    let tuned = env();
    let default = WorkloadEnv::os_default(machines::machine_b()).with_threads(4);
    let mut a = DbSystem::boot(SystemKind::MonetDbLike, &default, &data);
    let mut b = DbSystem::boot(SystemKind::MonetDbLike, &tuned, &data);
    for q in [2usize, 4, 11, 19, 21] {
        assert_eq!(a.run(q).rows, b.run(q).rows, "Q{q} rows changed under tuning");
    }
}
