//! Integration tests for the capacity-and-faults layer: deterministic
//! fault injection, leak-free page accounting, the finite-capacity
//! policy story, and the fallible retrying sweep harness end-to-end.

use nqp::core::{sweep, Outcome, RetryPolicy, TuningConfig};
use nqp::datagen::generate;
use nqp::query::{try_run_aggregation_on, AggConfig};
use nqp::sim::{
    Access, FaultPlan, MemPolicy, NumaSim, SimConfig, SimError, ThreadPlacement, VAddr,
    SMALL_PAGE,
};
use nqp::topology::machines;
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Determinism: same seed + same FaultPlan => bit-identical runs.
// ---------------------------------------------------------------------

/// A degraded machine (slow link, preemption storm, failing AutoNUMA
/// migrations) must still be a *deterministic* machine: two runs with
/// the same seed and plan produce bit-identical counters and cycles.
#[test]
fn same_seed_and_plan_give_bit_identical_counters() {
    let plan = FaultPlan::parse(
        "link@0..99:link=0,lat=3.0,bw=2.0;preempt@0..99:period=50000;migfail@0..99",
        7,
    )
    .expect("well-formed spec");
    let cfg = TuningConfig::os_default(machines::machine_a())
        .with_autonuma(true)
        .with_faults(plan);
    let acfg = AggConfig::w1(40_000, 8_000, 11);
    let records = generate(acfg.dataset, 40_000, 8_000, 11);
    let run = || {
        try_run_aggregation_on(&cfg.env(8), &acfg, &records)
            .expect("degraded but survivable")
    };
    let (a, b) = (run(), run());
    assert_eq!(a.counters, b.counters, "counters must be bit-identical");
    assert_eq!(a.exec_cycles, b.exec_cycles);
    assert!(a.counters.preemptions > 0, "the storm must actually fire");
}

/// Failures replay exactly too: an uncleared transient allocation fault
/// yields the same typed error (same region, same attempt) every run.
#[test]
fn injected_failures_replay_identically() {
    let cfg = TuningConfig::os_default(machines::machine_b())
        .with_faults(FaultPlan::new(3).with_alloc_fail(0, 99, u32::MAX));
    let acfg = AggConfig::w2(20_000, 2_000, 9);
    let records = generate(acfg.dataset, 20_000, 2_000, 9);
    let run = || {
        try_run_aggregation_on(&cfg.env(4), &acfg, &records)
            .expect_err("the plan never clears")
    };
    let (a, b) = (run(), run());
    assert_eq!(a, b, "the fault must be reproducible");
    assert!(matches!(a, SimError::InjectedAllocFault { .. }));
}

/// Whole sweeps are deterministic: per-trial outcomes, attempt counts,
/// and recorded cycles all match between two identical invocations.
#[test]
fn sweeps_replay_outcome_for_outcome() {
    let machine = machines::machine_b();
    let configs = vec![
        TuningConfig::os_default(machine.clone())
            .named("flaky")
            .with_faults(FaultPlan::new(5).with_alloc_fail(2, 2, 1)),
        TuningConfig::tuned(machine).named("strangled").with_trial_budget(10_000),
    ];
    let acfg = AggConfig::w2(20_000, 2_000, 9);
    let records = generate(acfg.dataset, 20_000, 2_000, 9);
    let run = || {
        let report = sweep(&configs, 4, 2, &RetryPolicy::default(), |env, _| {
            try_run_aggregation_on(env, &acfg, &records).map(|o| o.exec_cycles)
        });
        report
            .trials
            .iter()
            .map(|t| (t.config.clone(), t.outcome, t.attempts, t.cycles))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

// ---------------------------------------------------------------------
// Capacity accounting: no page leaks across map/touch/unmap.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Per-node used-page accounting returns to exactly zero once every
    /// mapping is released, under every placement policy, with and
    /// without THP, whether or not the pages were ever touched.
    #[test]
    fn page_accounting_returns_to_zero_after_unmap(
        mappings in prop::collection::vec((1u64..600, any::<bool>()), 1..12),
        policy_idx in 0usize..5,
        thp in any::<bool>(),
    ) {
        let policy = [
            MemPolicy::FirstTouch,
            MemPolicy::Interleave,
            MemPolicy::Localalloc,
            MemPolicy::Preferred(1),
            MemPolicy::Bind(0),
        ][policy_idx];
        let mut sim = NumaSim::new(
            SimConfig::os_default(machines::machine_b())
                .with_policy(policy)
                .with_autonuma(false)
                .with_thp(thp),
        );
        let mut state: (Vec<(VAddr, u64)>, Vec<(u64, bool)>) = (Vec::new(), mappings);
        sim.serial(&mut state, |w, (maps, mappings)| {
            for (pages, touch) in mappings.iter() {
                let bytes = pages * SMALL_PAGE;
                let addr = w.map_pages(bytes);
                if *touch {
                    w.touch(addr, bytes, Access::Read);
                }
                maps.push((addr, bytes));
            }
        });
        let mut maps = state.0;
        sim.serial(&mut maps, |w, maps| {
            for (addr, bytes) in maps.iter() {
                w.unmap_pages(*addr, *bytes);
            }
        });
        prop_assert!(
            sim.node_used_pages().iter().all(|&used| used == 0),
            "page leak: {:?}", sim.node_used_pages()
        );
    }
}

// ---------------------------------------------------------------------
// Paper-findings regression: the Figure 4/5 capacity story.
// ---------------------------------------------------------------------

/// First-Touch on a capacity-capped node spills, in zone order, to the
/// nearest node with free pages — and the spilled (most recently
/// allocated, i.e. hot) data then lives *entirely* remote, so repeated
/// scans of it show higher remote-access counters than Interleave at
/// the same footprint, where only `1/num_nodes` of any slice is remote.
#[test]
fn capped_first_touch_spills_and_goes_remote() {
    const CAP_PAGES: u64 = 256;
    const FOOTPRINT_PAGES: u64 = 512;
    const TAIL_PAGES: u64 = 256;
    let mut machine = machines::machine_b();
    machine.mem_per_node_bytes = CAP_PAGES * SMALL_PAGE;
    let num_nodes = machine.topology.num_nodes();
    assert!(num_nodes >= 2, "the spill story needs a second zone");

    let run = |policy: MemPolicy| {
        let mut sim = NumaSim::new(
            SimConfig::os_default(machine.clone())
                .with_threads(ThreadPlacement::Sparse)
                .with_policy(policy)
                .with_autonuma(false)
                .with_thp(false),
        );
        let mut addr: VAddr = 0;
        // Allocation pass: fault in the whole footprint from node 0.
        sim.serial(&mut addr, |w, addr| {
            *addr = w.map_pages(FOOTPRINT_PAGES * SMALL_PAGE);
            w.touch(*addr, FOOTPRINT_PAGES * SMALL_PAGE, Access::Write);
        });
        // Hot phase: rescan the most recently allocated tail.
        let tail = addr + (FOOTPRINT_PAGES - TAIL_PAGES) * SMALL_PAGE;
        for _ in 0..8 {
            sim.flush_caches();
            sim.serial(&mut (), |w, _| {
                w.touch(tail, TAIL_PAGES * SMALL_PAGE, Access::Read);
            });
        }
        let used = sim.node_used_pages().to_vec();
        (sim.counters(), used)
    };

    let (ft, ft_used) = run(MemPolicy::FirstTouch);
    let (il, il_used) = run(MemPolicy::Interleave);

    // First-Touch fills node 0 to its cap and spills the remainder to
    // exactly one other zone (the nearest), instead of failing.
    assert_eq!(ft_used[0], CAP_PAGES, "node 0 must fill to its budget");
    assert_eq!(ft_used.iter().sum::<u64>(), FOOTPRINT_PAGES, "nothing lost");
    let spill_nodes = ft_used[1..].iter().filter(|&&u| u > 0).count();
    assert_eq!(spill_nodes, 1, "spill goes zone-order to one neighbour: {ft_used:?}");

    // Interleave spreads the same footprint across all nodes.
    assert!(
        il_used.iter().all(|&u| u > 0),
        "interleave must use every node: {il_used:?}"
    );

    // The hot tail is 100% remote under capped First-Touch but only
    // (n-1)/n remote under Interleave.
    assert!(
        ft.remote_accesses > il.remote_accesses,
        "capped First-Touch must show more remote accesses than \
         Interleave at the same footprint: FT {} vs IL {}",
        ft.remote_accesses,
        il.remote_accesses
    );
}

/// The same footprint under strict `Bind` does not spill: it fails with
/// a typed OOM naming the bound node, like `numactl --membind`.
#[test]
fn strict_bind_reports_oom_instead_of_spilling() {
    const CAP_PAGES: u64 = 256;
    let mut machine = machines::machine_b();
    machine.mem_per_node_bytes = CAP_PAGES * SMALL_PAGE;
    let mut sim = NumaSim::new(
        SimConfig::os_default(machine)
            .with_policy(MemPolicy::Bind(0))
            .with_autonuma(false)
            .with_thp(false),
    );
    let err = sim
        .try_serial(&mut (), |w, _| {
            let addr = w.map_pages(2 * CAP_PAGES * SMALL_PAGE);
            w.touch(addr, SMALL_PAGE, Access::Write);
        })
        .expect_err("twice the node budget cannot bind");
    assert!(
        matches!(err, SimError::OutOfMemory { node: 0, .. }),
        "want OutOfMemory on the bound node, got {err}"
    );
}

// ---------------------------------------------------------------------
// Acceptance: a sweep survives injected faults and budget timeouts.
// ---------------------------------------------------------------------

/// The ISSUE's acceptance sweep: one config hits a transient allocation
/// fault (retried successfully with backoff), one exhausts its cycle
/// budget every trial, one is healthy — and the sweep completes without
/// panicking, reporting a per-trial outcome for every cell.
#[test]
fn sweep_survives_transient_faults_and_timeouts() {
    let machine = machines::machine_b();
    let configs = vec![
        TuningConfig::os_default(machine.clone())
            .named("flaky")
            .with_faults(FaultPlan::new(3).with_alloc_fail(2, 2, 1)),
        TuningConfig::tuned(machine.clone()).named("strangled").with_trial_budget(10_000),
        TuningConfig::tuned(machine).named("healthy"),
    ];
    let acfg = AggConfig::w2(20_000, 2_000, 9);
    let records = generate(acfg.dataset, 20_000, 2_000, 9);
    let report = sweep(&configs, 4, 2, &RetryPolicy::default(), |env, _| {
        try_run_aggregation_on(env, &acfg, &records).map(|o| o.exec_cycles)
    });

    assert_eq!(report.trials.len(), 6, "every (config, trial) cell is recorded");

    // The transient fault cleared on the retry: two attempts, then Ok.
    for t in report.trials.iter().filter(|t| t.config == "flaky") {
        assert_eq!(t.outcome, Outcome::Ok, "transient fault must be survivable");
        assert_eq!(t.attempts, 2, "one failing attempt, one clean retry");
        assert!(t.cycles.is_some());
    }
    // The strangled config times out on every trial, which is the one
    // condition that marks a configuration as failed.
    for t in report.trials.iter().filter(|t| t.config == "strangled") {
        assert_eq!(t.outcome, Outcome::Timeout);
        assert!(matches!(t.error, Some(SimError::Timeout { .. })));
    }
    assert_eq!(report.failed_configs(), vec!["strangled"]);
    assert!(report.mean_cycles("healthy").is_some());

    // Surviving trials still feed the result tables.
    let flaky = report.mean_cycles("flaky").expect("flaky trials succeeded");
    let healthy = report.mean_cycles("healthy").expect("healthy trials succeeded");
    assert!(flaky > 0 && healthy > 0);

    let table = report.table();
    assert!(table.contains("ok") && table.contains("timeout"), "table:\n{table}");
}
