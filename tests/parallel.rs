//! Property-style equivalence for the parallel sweep executor: for any
//! grid shape — config count, trial count, injected fault plan, and
//! mid-grid `max_cells` interrupt — `sweep_parallel(jobs=k)` for k in
//! {1, 2, 7} must emit the same `to_csv()` bytes (and table, and JSON)
//! as the serial `sweep_supervised` on the identical grid.
//!
//! This is the determinism contract the `--jobs` flag sells (DESIGN.md
//! §4c): parallelism changes wall-clock, never bytes.

use nqp::core::executor::sweep_parallel;
use nqp::core::runner::{
    sweep_supervised, RetryPolicy, SupervisorPolicy, TrialMeasurement,
};
use nqp::core::TuningConfig;
use nqp::datagen::generate;
use nqp::query::{try_run_aggregation_on, AggConfig, WorkloadEnv};
use nqp::sim::{FaultKind, FaultPlan, MemPolicy, SimResult};
use nqp::topology::machines;

/// The fault dimension of the grid space: healthy, a transient
/// allocation fault that clears after one retry (exercises the backoff
/// path), and a sticky node outage (exercises degraded trials and
/// evacuation metering).
#[derive(Clone, Copy)]
enum Faults {
    None,
    TransientAlloc,
    NodeOffline,
}

impl Faults {
    fn plan(self) -> Option<FaultPlan> {
        match self {
            Faults::None => None,
            Faults::TransientAlloc => Some(FaultPlan::new(3).with_alloc_fail(2, 2, 1)),
            Faults::NodeOffline => {
                Some(FaultPlan::new(5).with_event(2, 2, FaultKind::NodeOffline { node: 1 }))
            }
        }
    }

    fn label(self) -> &'static str {
        match self {
            Faults::None => "healthy",
            Faults::TransientAlloc => "transient-alloc",
            Faults::NodeOffline => "node-offline",
        }
    }
}

/// Build a grid of `n` configurations with distinct names and policies,
/// all under the same fault dimension.
fn grid(n: usize, faults: Faults) -> Vec<TuningConfig> {
    (0..n)
        .map(|i| {
            let mut cfg = TuningConfig::os_default(machines::machine_b())
                .with_policy(if i % 2 == 0 {
                    MemPolicy::Interleave
                } else {
                    MemPolicy::FirstTouch
                })
                .named(format!("{}-{i}", faults.label()));
            if let Some(plan) = faults.plan() {
                cfg = cfg.with_faults(plan);
            }
            cfg
        })
        .collect()
}

fn workload() -> impl Fn(&WorkloadEnv, usize) -> SimResult<TrialMeasurement> + Sync {
    let acfg = AggConfig::w2(800, 80, 7);
    let records = generate(acfg.dataset, 800, 80, 7);
    move |env: &WorkloadEnv, _trial: usize| {
        let out = try_run_aggregation_on(env, &acfg, &records)?;
        Ok(TrialMeasurement {
            cycles: out.exec_cycles,
            degraded: out.counters.nodes_offlined > 0 || out.counters.evacuated_pages > 0,
            evacuated_pages: out.counters.evacuated_pages,
        })
    }
}

#[test]
fn parallel_csv_bytes_equal_serial_for_any_grid() {
    let workload = workload();
    let mut cases = 0usize;
    for nconfigs in [1usize, 3] {
        for trials in [1usize, 2] {
            for faults in [Faults::None, Faults::TransientAlloc, Faults::NodeOffline] {
                let configs = grid(nconfigs, faults);
                let total = nconfigs * trials;
                // max_cells: uninterrupted, a mid-grid interrupt, and an
                // interrupt landing exactly on the grid boundary.
                for max_cells in [None, Some(1), Some(total)] {
                    let policy = SupervisorPolicy {
                        retry: RetryPolicy { max_retries: 2, backoff_base_cycles: 50 },
                        breaker_threshold: Some(2),
                        max_cells,
                        ..Default::default()
                    };
                    let serial = sweep_supervised(
                        &configs, 4, trials, &policy, &[], &mut |_| {}, &workload,
                    );
                    for jobs in [1usize, 2, 7] {
                        let parallel = sweep_parallel(
                            &configs, 4, trials, &policy, &[], jobs, &mut |_| {},
                            &workload,
                        );
                        let tag = format!(
                            "configs={nconfigs} trials={trials} faults={} \
                             max_cells={max_cells:?} jobs={jobs}",
                            faults.label()
                        );
                        assert_eq!(parallel.to_csv(), serial.to_csv(), "{tag}");
                        assert_eq!(parallel.table(), serial.table(), "{tag}");
                        assert_eq!(parallel.to_json(), serial.to_json(), "{tag}");
                        assert_eq!(parallel.interrupted, serial.interrupted, "{tag}");
                        cases += 1;
                    }
                }
            }
        }
    }
    assert_eq!(cases, 108, "the grid space was fully swept");
}

/// The interrupt/resume loop in parallel: kill a parallel sweep
/// mid-grid under a fault plan, then finish it (parallel again) from
/// the records the first run produced — same bytes as never stopping.
#[test]
fn parallel_interrupt_then_parallel_resume_under_faults() {
    let workload = workload();
    let configs = grid(3, Faults::NodeOffline);
    let policy = |max_cells| SupervisorPolicy {
        retry: RetryPolicy { max_retries: 2, backoff_base_cycles: 50 },
        max_cells,
        ..Default::default()
    };
    let reference = sweep_supervised(
        &configs, 4, 2, &policy(None), &[], &mut |_| {}, &workload,
    );

    let mut journal = Vec::new();
    let partial = sweep_parallel(
        &configs, 4, 2, &policy(Some(3)), &[], 2,
        &mut |r| journal.push(r.clone()),
        &workload,
    );
    assert!(partial.interrupted);
    assert_eq!(journal.len(), 3, "exactly the admitted cells are journaled");

    let resumed = sweep_parallel(
        &configs, 4, 2, &policy(None), &journal, 7, &mut |_| {}, &workload,
    );
    assert_eq!(resumed.to_csv(), reference.to_csv());
    assert_eq!(resumed.trials, reference.trials);
}
