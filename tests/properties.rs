//! Property-based tests (proptest) on the core data structures and
//! invariants, spanning crates.

use nqp::alloc::{build, AllocatorKind};
use nqp::datagen::tpch::dates;
use nqp::datagen::{generate, Dataset, JoinDataset, Zipf};
use nqp::indexes::{build_index, IndexKind};
use nqp::sim::{MemPolicy, NumaSim, SimConfig, ThreadPlacement};
use nqp::storage::SimHeap;
use nqp::topology::{fully_connected, machines, ring, twisted_ladder};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

fn quiet_sim() -> NumaSim {
    NumaSim::new(
        SimConfig::os_default(machines::machine_b())
            .with_threads(ThreadPlacement::Sparse)
            .with_autonuma(false)
            .with_thp(false),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every index behaves exactly like a BTreeMap under arbitrary
    /// insert/lookup interleavings.
    #[test]
    fn indexes_match_btreemap(
        ops in prop::collection::vec((any::<bool>(), 0u64..300, any::<u64>()), 1..200),
        kind_idx in 0usize..4,
    ) {
        let kind = IndexKind::ALL[kind_idx];
        let mut sim = quiet_sim();
        let heap = SimHeap::new(AllocatorKind::Tbbmalloc, &mut sim);
        let mut shared = (heap, build_index(kind), BTreeMap::new(), ops);
        sim.serial(&mut shared, |w, (heap, index, model, ops)| {
            for (is_insert, key, value) in ops.iter() {
                if *is_insert {
                    index.insert(w, heap, *key, *value);
                    model.insert(*key, *value);
                } else {
                    assert_eq!(index.get(w, *key), model.get(key).copied());
                }
            }
            assert_eq!(index.len(), model.len() as u64);
        });
    }

    /// Allocators never hand out overlapping live blocks, never lose
    /// track of requested bytes, and resident >= requested.
    #[test]
    fn allocators_preserve_block_disjointness(
        sizes in prop::collection::vec(1u64..5000, 1..80),
        kind_idx in 0usize..7,
    ) {
        let kind = AllocatorKind::ALL[kind_idx];
        let mut sim = quiet_sim();
        let alloc = build(kind, &mut sim);
        let mut shared = (alloc, sizes);
        sim.parallel(2, &mut shared, |w, (alloc, sizes)| {
            let mut live: Vec<(u64, u64)> = Vec::new();
            for &size in sizes.iter() {
                let p = alloc.alloc(w, size);
                for &(q, qs) in &live {
                    assert!(p + size <= q || q + qs <= p,
                        "overlap: [{p},{size}) vs [{q},{qs})");
                }
                live.push((p, size));
            }
            let expect: u64 = sizes.iter().sum::<u64>() * (w.tid() as u64 + 1);
            assert!(alloc.live_requested() >= expect / 2);
            for (p, s) in live {
                alloc.free(w, p, s);
            }
        });
        prop_assert_eq!(shared.0.live_requested(), 0, "leak in {:?}", kind);
        prop_assert!(shared.0.peak_resident() >= shared.0.peak_requested());
    }

    /// Dataset generators stay in their key domain and produce exactly n
    /// records, for every distribution and parameter combination.
    #[test]
    fn generators_respect_domain(
        n in 1usize..3000,
        card in 1u64..500,
        seed in any::<u64>(),
        which in 0usize..5,
    ) {
        let dataset = [
            Dataset::MovingCluster,
            Dataset::Sequential,
            Dataset::Zipfian,
            Dataset::HeavyHitter,
            Dataset::Uniform,
        ][which];
        let records = generate(dataset, n, card, seed);
        prop_assert_eq!(records.len(), n);
        prop_assert!(records.iter().all(|r| r.key < card));
        // Determinism.
        prop_assert_eq!(&records, &generate(dataset, n, card, seed));
    }

    /// Zipf samples stay in-domain for arbitrary cardinalities/exponents.
    #[test]
    fn zipf_stays_in_domain(card in 1u64..2000, exp in 0.0f64..3.0, seed in any::<u64>()) {
        let z = Zipf::new(card, exp);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..64 {
            prop_assert!(z.sample(&mut rng) < card);
        }
    }

    /// Date parse/format round-trips across the whole TPC-H range.
    #[test]
    fn dates_round_trip(days in 0i32..2500) {
        let text = dates::format(days);
        prop_assert_eq!(dates::parse(&text), Ok(days));
        // Month arithmetic inverts (for non-clamped days).
        let d = dates::parse(&format!("{}-{:02}-01", 1992 + days / 900, 1 + (days % 12) as u32))
            .expect("well-formed literal");
        prop_assert_eq!(dates::add_months(dates::add_months(d, 5), -5), d);
    }

    /// Join datasets: R is a permutation, S references only R's keys.
    #[test]
    fn join_dataset_integrity(r in 1usize..500, ratio in 1usize..8, seed in any::<u64>()) {
        let d = JoinDataset::generate_with_ratio(r, ratio, seed);
        prop_assert_eq!(d.r.len(), r);
        prop_assert_eq!(d.s.len(), r * ratio);
        let mut keys: Vec<u64> = d.r.iter().map(|t| t.key).collect();
        keys.sort_unstable();
        prop_assert!(keys.iter().enumerate().all(|(i, &k)| k == i as u64));
        prop_assert!(d.s.iter().all(|t| t.key < r as u64));
    }

    /// Topology invariants: symmetric hop distances, zero diagonal, and
    /// shortest paths of matching length, for three builder families.
    #[test]
    fn topology_invariants(n in 2usize..9, which in 0usize..3) {
        let tiers: Vec<f64> = (0..16).map(|i| 1.0 + 0.2 * i as f64).collect();
        let topo = match which {
            0 => fully_connected(n, tiers).unwrap(),
            1 => ring(n, tiers).unwrap(),
            _ => twisted_ladder(tiers).unwrap(),
        };
        let nodes = topo.num_nodes();
        for a in 0..nodes {
            prop_assert_eq!(topo.hops(a, a), 0);
            for b in 0..nodes {
                prop_assert_eq!(topo.hops(a, b), topo.hops(b, a));
                let path = topo.shortest_path(a, b);
                prop_assert_eq!(path.len(), topo.hops(a, b) + 1);
                prop_assert_eq!(path[0], a);
                prop_assert_eq!(*path.last().unwrap(), b);
            }
        }
    }

    /// The simulator is a pure function of its configuration: identical
    /// seeds give identical counters, different policies still give
    /// identical *data*.
    #[test]
    fn sim_data_integrity_under_any_policy(
        values in prop::collection::vec(any::<u64>(), 1..100),
        policy_idx in 0usize..4,
    ) {
        let policy = MemPolicy::ALL[policy_idx];
        let mut sim = NumaSim::new(
            SimConfig::os_default(machines::machine_a()).with_policy(policy),
        );
        let mut shared = (0u64, values);
        sim.serial(&mut shared, |w, (base, values)| {
            *base = w.map_pages(values.len() as u64 * 8);
            for (i, v) in values.iter().enumerate() {
                w.write_u64(*base + i as u64 * 8, *v);
            }
        });
        sim.parallel(4, &mut shared, |w, (base, values)| {
            for (i, v) in values.iter().enumerate() {
                assert_eq!(w.read_u64(*base + i as u64 * 8), *v);
            }
        });
    }
}
