//! Differential tests for the page-granular fast path (DESIGN.md §4e).
//!
//! The fast path must be *bit-identical* to the per-line reference
//! model (`SimConfig::reference_model`): same cycles, same counters,
//! same trace artifacts, byte for byte. These tests drive the two
//! models with identical inputs and assert exact equality — first over
//! proptest-generated mixed workloads through the library, then over
//! real `sweep --trace-dir` artifacts written by the real `nqp-cli`
//! binary with `NQP_REFERENCE=1` flipping the model.

use nqp::sim::{
    Access, FaultKind, FaultPlan, NumaSim, SimConfig, ThreadPlacement, TraceConfig, SMALL_PAGE,
};
use nqp::topology::machines;
use proptest::prelude::*;
use std::path::PathBuf;
use std::process::Command;
use std::sync::atomic::{AtomicUsize, Ordering};

/// One interpreted step of the generated workload: an opcode plus two
/// operand words, decoded in `run_ops` below. Keeping the program a
/// flat data vector (rather than a strategy per variant) lets proptest
/// shrink failures to short readable traces.
type Op = (u8, u64, u64);

/// The configurations under test. Spanning pinned/unpinned threads,
/// THP, AutoNUMA, both machines, and an active fault plan covers every
/// invalidation edge of the uWalk memo: hint faults, migrations, TLB
/// flushes, epoch rollover, and fault-event reroutes.
fn config(idx: usize) -> SimConfig {
    match idx {
        0 => SimConfig::os_default(machines::machine_b())
            .with_threads(ThreadPlacement::Sparse)
            .with_autonuma(false)
            .with_thp(false),
        1 => SimConfig::os_default(machines::machine_a()),
        2 => SimConfig::os_default(machines::machine_b()).with_faults(
            FaultPlan::new(17)
                .with_event(
                    0,
                    u64::MAX,
                    FaultKind::LinkDegrade { link: 1, latency_x: 2.5, bandwidth_div: 2.0 },
                )
                .with_event(
                    0,
                    u64::MAX,
                    FaultKind::PreemptionStorm { period_cycles: 30_000 },
                ),
        ),
        _ => SimConfig::os_default(machines::machine_b())
            .with_trace(TraceConfig::default().with_epoch_cycles(25_000).with_label("hotpath")),
    }
}

/// Interpret the op program inside a worker. Every worker starts with
/// one 16-page arena and grows/shrinks a local region list, so maps,
/// unmaps, ranged touches, typed reads/writes, RMWs, and DMA bursts
/// interleave — with addresses perturbed per thread.
fn run_ops(w: &mut nqp::sim::Worker<'_>, ops: &[Op]) {
    let mut regions: Vec<(u64, u64)> = vec![(w.map_pages(SMALL_PAGE * 16), SMALL_PAGE * 16)];
    let salt = w.tid() as u64 * 0x9e37_79b9;
    for &(op, a, b) in ops {
        let (base, bytes) = regions[(a.wrapping_add(salt) % regions.len() as u64) as usize];
        // Keep 640 bytes of headroom so multi-word accesses stay mapped.
        let off = b.wrapping_add(salt) % (bytes - 640);
        match op % 7 {
            0 => w.touch(base + off, a % 600 + 1, Access::Read),
            1 => w.touch(base + off, b % 600 + 1, Access::Write),
            2 => {
                let mut buf = [0u64; 16];
                let n = (a % 16 + 1) as usize;
                w.read_u64_run(base + (off & !7), &mut buf[..n]);
            }
            3 => {
                w.rmw_u64(base + (off & !7), |v| v.wrapping_add(1));
            }
            4 => {
                let sz = SMALL_PAGE * (a % 8 + 1);
                regions.push((w.map_pages(sz), sz));
            }
            5 => {
                if regions.len() > 1 {
                    let (addr, sz) = regions.swap_remove(regions.len() - 1);
                    w.unmap_pages(addr, sz);
                } else {
                    w.dma_lines(base + off, b % 32 + 1);
                }
            }
            _ => {
                w.write_u64_run(base + (off & !7), &[a, b, a ^ b]);
            }
        }
        if w.fault().is_some() {
            return;
        }
    }
    for (addr, sz) in regions {
        w.unmap_pages(addr, sz);
    }
}

/// Run the op program under one model and return everything observable:
/// final clock, machine-wide counters, per-region stats, and the trace
/// log (when the config records one).
#[allow(clippy::type_complexity)]
fn observe(
    cfg: SimConfig,
    threads: usize,
    ops: &[Op],
    reference: bool,
) -> (u64, nqp::sim::Counters, Vec<(u64, nqp::sim::Counters)>, Option<nqp::sim::TraceLog>) {
    let mut sim = NumaSim::new(cfg.with_reference_model(reference));
    let mut stats = Vec::new();
    let mut shared = ops.to_vec();
    for _ in 0..2 {
        let s = sim.parallel(threads, &mut shared, |w, ops| run_ops(w, ops));
        stats.push((s.elapsed_cycles, s.counters));
    }
    (sim.now_cycles(), sim.counters(), stats, sim.take_trace())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The heavy differential property: arbitrary mixed workloads —
    /// ranged touches, typed bulk reads/writes, RMWs, maps, unmaps,
    /// DMA — under every configuration class must produce *identical*
    /// cycles, counters, per-region stats, and trace logs on the fast
    /// path and the per-line reference model.
    #[test]
    fn fast_path_is_bit_identical_to_reference(
        ops in prop::collection::vec((any::<u8>(), any::<u64>(), any::<u64>()), 1..80),
        cfg_idx in 0usize..4,
        threads in 1usize..5,
    ) {
        let fast = observe(config(cfg_idx), threads, &ops, false);
        let reference = observe(config(cfg_idx), threads, &ops, true);
        prop_assert_eq!(fast.0, reference.0, "final clock diverges");
        prop_assert_eq!(fast.1, reference.1, "counters diverge");
        prop_assert_eq!(fast.2, reference.2, "per-region stats diverge");
        prop_assert_eq!(fast.3, reference.3, "trace logs diverge");
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("nqp-hotpath-{}-{tag}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn read_artifacts(dir: &std::path::Path) -> Vec<(String, Vec<u8>)> {
    let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| {
            let e = e.unwrap();
            (e.file_name().to_string_lossy().into_owned(), std::fs::read(e.path()).unwrap())
        })
        .collect();
    files.sort();
    files
}

/// Through the real binary: a traced sweep run under `NQP_REFERENCE=1`
/// must write byte-identical CSV and `.trace` artifacts to the default
/// fast-path run — the model switch is invisible in every artifact.
#[test]
fn sweep_artifacts_identical_under_reference_model() {
    let run = |reference: bool| {
        let dir = temp_dir(if reference { "ref" } else { "fast" });
        let csv = dir.join("sweep.csv");
        let trace_dir = dir.join("traces");
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_nqp-cli"));
        cmd.args([
            "sweep", "w1", "--machine", "B", "--threads", "4", "--n", "6000", "--card",
            "600", "--trials", "2",
        ]);
        cmd.arg("--csv").arg(&csv);
        cmd.arg("--trace-dir").arg(&trace_dir);
        if reference {
            cmd.env("NQP_REFERENCE", "1");
        }
        let out = cmd.output().unwrap();
        assert!(out.status.success(), "sweep failed (reference={reference}): {out:?}");
        (out.stdout, std::fs::read(&csv).unwrap(), read_artifacts(&trace_dir))
    };
    let fast = run(false);
    let reference = run(true);
    assert_eq!(
        String::from_utf8_lossy(&fast.0),
        String::from_utf8_lossy(&reference.0),
        "sweep stdout diverges between models"
    );
    assert_eq!(fast.1, reference.1, "sweep CSV diverges between models");
    assert_eq!(fast.2.len(), 4, "expected 2 configs x 2 trials of trace artifacts");
    assert_eq!(fast.2, reference.2, "trace artifacts diverge between models");
}

/// The `hotpath` microbench subcommand reports the same model cycles
/// under both paths — the number bench.sh cross-checks before it
/// publishes a speedup.
#[test]
fn hotpath_microbench_cycles_identical() {
    let run = |reference: bool| {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_nqp-cli"));
        cmd.args([
            "hotpath", "w1", "--machine", "B", "--threads", "4", "--n", "40000", "--card",
            "4000", "--reps", "1",
        ]);
        if reference {
            cmd.env("NQP_REFERENCE", "1");
        }
        let out = cmd.output().unwrap();
        assert!(out.status.success(), "hotpath failed (reference={reference}): {out:?}");
        let text = String::from_utf8(out.stdout).unwrap();
        let last = text.lines().last().unwrap().to_string();
        let field = |k: &str| {
            last.split_whitespace()
                .find_map(|t| t.strip_prefix(k))
                .unwrap_or_else(|| panic!("missing `{k}` in `{last}`"))
                .to_string()
        };
        (field("cycles="), field("lines="))
    };
    let fast = run(false);
    let reference = run(true);
    assert_eq!(fast, reference, "hotpath cycles/lines diverge between models");
}
