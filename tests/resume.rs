//! Integration tests for crash-safe resumable sweeps and node-offline
//! graceful degradation, end to end: real workloads, real journal files
//! on disk, real torn writes.
//!
//! The contract under test is the one EXPERIMENTS.md sells: kill a
//! sweep at any cell boundary (or mid-append), resume it from its
//! journal, and the final table is bit-identical to a run that was
//! never interrupted.

use nqp::core::executor::sweep_parallel;
use nqp::core::journal::{grid_fingerprint, read_journal, JournalWriter};
use nqp::core::runner::{
    sweep_supervised, Outcome, SupervisorPolicy, TrialMeasurement, TrialRecord,
};
use nqp::core::TuningConfig;
use nqp::datagen::generate;
use nqp::query::{try_run_aggregation_on, AggConfig, WorkloadEnv};
use nqp::sim::{FaultKind, FaultPlan, MemPolicy, SimError, SimResult};
use nqp::topology::machines;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

fn temp_journal(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "nqp-resume-{}-{tag}-{n}.jsonl",
        std::process::id()
    ))
}

/// A small two-config grid whose second config degrades: node 1 goes
/// offline partway through the run.
fn grid() -> Vec<TuningConfig> {
    let outage = FaultPlan::new(5).with_event(2, 2, FaultKind::NodeOffline { node: 1 });
    vec![
        TuningConfig::os_default(machines::machine_b())
            .with_policy(MemPolicy::Interleave)
            .named("healthy"),
        TuningConfig::os_default(machines::machine_b())
            .with_policy(MemPolicy::Interleave)
            .with_faults(outage)
            .named("node-1-dies"),
    ]
}

// `Fn + Sync` (not just `FnMut`) so the same workload drives both the
// serial supervisor and the parallel executor.
fn workload() -> impl Fn(&WorkloadEnv, usize) -> SimResult<TrialMeasurement> + Sync {
    let acfg = AggConfig::w2(6_000, 600, 3);
    let records = generate(acfg.dataset, 6_000, 600, 3);
    move |env: &WorkloadEnv, _trial: usize| {
        let out = try_run_aggregation_on(env, &acfg, &records)?;
        Ok(TrialMeasurement {
            cycles: out.exec_cycles,
            degraded: out.counters.nodes_offlined > 0 || out.counters.evacuated_pages > 0,
            evacuated_pages: out.counters.evacuated_pages,
        })
    }
}

fn run_sweep(
    resume: &[TrialRecord],
    max_cells: Option<usize>,
    sink: &mut dyn FnMut(&TrialRecord),
) -> nqp::core::SweepReport {
    let policy = SupervisorPolicy { max_cells, ..Default::default() };
    sweep_supervised(&grid(), 4, 2, &policy, resume, sink, workload())
}

fn run_sweep_parallel(
    resume: &[TrialRecord],
    max_cells: Option<usize>,
    jobs: usize,
    sink: &mut (dyn FnMut(&TrialRecord) + Send),
) -> nqp::core::SweepReport {
    let policy = SupervisorPolicy { max_cells, ..Default::default() };
    sweep_parallel(&grid(), 4, 2, &policy, resume, jobs, sink, workload())
}

/// Node outage mid-region: the engine evacuates the node's pages and
/// the trial completes `Degraded` with the evacuation metered — not a
/// panic, not a failure.
#[test]
fn node_offline_degrades_the_trial_with_metrics() {
    let report = run_sweep(&[], None, &mut |_| {});
    let wounded: Vec<&TrialRecord> =
        report.trials.iter().filter(|t| t.config == "node-1-dies").collect();
    assert_eq!(wounded.len(), 2);
    for t in &wounded {
        assert_eq!(t.outcome, Outcome::Degraded, "outage must degrade, not kill");
        assert!(t.evacuated_pages > 0, "evacuation must be metered");
        assert!(t.cycles.is_some(), "degraded trials still report cycles");
    }
    let healthy: Vec<&TrialRecord> =
        report.trials.iter().filter(|t| t.config == "healthy").collect();
    assert!(healthy.iter().all(|t| t.outcome == Outcome::Ok && t.evacuated_pages == 0));
    // Degraded configs are not "failed": the sweep-level verdict stays clean.
    assert!(report.failed_configs().is_empty());
}

/// Strict binding to a node that goes offline is unsatisfiable: the
/// fault surfaces as a typed `SimError::NodeOffline`, never a panic,
/// and the sweep records the cell as `Faulted`.
#[test]
fn strict_bind_to_offline_node_fails_typed() {
    let outage = FaultPlan::new(9).with_event(0, 0, FaultKind::NodeOffline { node: 1 });
    let cfg = TuningConfig::os_default(machines::machine_b())
        .with_policy(MemPolicy::Bind(1))
        .with_faults(outage)
        .named("bound-to-dead-node");
    let acfg = AggConfig::w2(2_000, 200, 3);
    let records = generate(acfg.dataset, 2_000, 200, 3);
    let err = try_run_aggregation_on(&cfg.env(4), &acfg, &records)
        .expect_err("binding to an offline node cannot succeed");
    assert_eq!(err, SimError::NodeOffline { node: 1 });

    let policy = SupervisorPolicy::default();
    let report = sweep_supervised(&[cfg], 4, 1, &policy, &[], &mut |_| {}, {
        move |env: &WorkloadEnv, _| {
            try_run_aggregation_on(env, &acfg, &records)
                .map(|o| TrialMeasurement::from(o.exec_cycles))
        }
    });
    assert_eq!(report.trials[0].outcome, Outcome::Faulted);
    assert_eq!(report.failed_configs(), vec!["bound-to-dead-node"]);
}

/// The headline guarantee, through real files: run the grid journaled
/// but interrupted after 1 cell, resume from the journal on disk, and
/// the final table is bit-identical to an uninterrupted run.
#[test]
fn interrupted_then_resumed_sweep_is_bit_identical() {
    let uninterrupted = run_sweep(&[], None, &mut |_| {});

    let path = temp_journal("resume");
    let fp = grid_fingerprint("resume-test-grid");
    let mut w = JournalWriter::create(&path, &fp, "resume-test-grid").unwrap();
    let partial = run_sweep(&[], Some(1), &mut |rec| w.record(rec).unwrap());
    drop(w);
    assert!(partial.interrupted);
    assert_eq!(partial.trials.len(), 1);

    let (mut w, contents) = JournalWriter::append_to(&path).unwrap();
    assert_eq!(contents.fingerprint, fp);
    assert!(!contents.torn);
    assert_eq!(contents.records, partial.trials, "journal round-trips the records");
    let resumed = run_sweep(&contents.records, None, &mut |rec| w.record(rec).unwrap());
    drop(w);

    assert_eq!(resumed.table(), uninterrupted.table(), "tables must be bit-identical");
    assert_eq!(resumed.trials, uninterrupted.trials);
    assert_eq!(resumed.to_csv(), uninterrupted.to_csv());
    assert_eq!(resumed.to_json(), uninterrupted.to_json());

    // The journal now holds the full grid and replays to the same table.
    let full = read_journal(&path).unwrap();
    assert_eq!(full.records, uninterrupted.trials);
    std::fs::remove_file(&path).ok();
}

/// Crash *mid-append*: tear the journal's last record in half. Resume
/// discards the torn cell, re-runs it deterministically, and still
/// converges to the uninterrupted table.
#[test]
fn torn_write_is_discarded_and_the_cell_reruns() {
    let uninterrupted = run_sweep(&[], None, &mut |_| {});

    let path = temp_journal("torn");
    let fp = grid_fingerprint("torn-test-grid");
    let mut w = JournalWriter::create(&path, &fp, "torn-test-grid").unwrap();
    let partial = run_sweep(&[], Some(3), &mut |rec| w.record(rec).unwrap());
    drop(w);
    assert_eq!(partial.trials.len(), 3);

    // Simulate the crash landing mid-write: chop the tail mid-line.
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() - 17]).unwrap();

    let (mut w, contents) = JournalWriter::append_to(&path).unwrap();
    assert!(contents.torn, "the torn tail must be detected");
    assert_eq!(contents.records.len(), 2, "only intact records survive");
    let resumed = run_sweep(&contents.records, None, &mut |rec| w.record(rec).unwrap());
    drop(w);

    assert_eq!(resumed.table(), uninterrupted.table());
    assert_eq!(resumed.trials, uninterrupted.trials);
    let full = read_journal(&path).unwrap();
    assert!(!full.torn, "append after recovery restores a clean journal");
    assert_eq!(full.records, uninterrupted.trials);
    std::fs::remove_file(&path).ok();
}

/// The parallel executor is a drop-in for the serial supervisor: for
/// every worker count the report — table, CSV, JSON, the records
/// themselves — is byte-identical to `sweep_supervised` on the same
/// grid (which here includes a real node-outage fault plan).
#[test]
fn parallel_sweep_is_bit_identical_to_serial() {
    let serial = run_sweep(&[], None, &mut |_| {});
    for jobs in [1, 2, 7] {
        let parallel = run_sweep_parallel(&[], None, jobs, &mut |_| {});
        assert_eq!(parallel.trials, serial.trials, "jobs={jobs}");
        assert_eq!(parallel.table(), serial.table(), "jobs={jobs}");
        assert_eq!(parallel.to_csv(), serial.to_csv(), "jobs={jobs}");
        assert_eq!(parallel.to_json(), serial.to_json(), "jobs={jobs}");
    }
}

/// Kill a *parallel* journaled run mid-grid, then resume — serially and
/// in parallel — from the journal it left behind. Both resumed runs
/// converge to the uninterrupted serial table, even though the journal
/// was written in completion order rather than grid order.
#[test]
fn killed_parallel_run_resumes_serial_or_parallel_to_identical_bytes() {
    let uninterrupted = run_sweep(&[], None, &mut |_| {});

    let path = temp_journal("parallel");
    let fp = grid_fingerprint("parallel-resume-grid");
    let mut w = JournalWriter::create(&path, &fp, "parallel-resume-grid").unwrap();
    let partial =
        run_sweep_parallel(&[], Some(2), 2, &mut |rec| w.record(rec).unwrap());
    drop(w);
    assert!(partial.interrupted);
    assert_eq!(partial.trials.len(), 2, "admission matches the serial cutoff");

    // Resume serially from the parallel run's journal.
    let (mut w, contents) = JournalWriter::append_to(&path).unwrap();
    assert_eq!(contents.records.len(), 2);
    // Completion order may differ from grid order; resume matches by
    // (config, trial), so sorted sets must agree.
    let mut journaled = contents.records.clone();
    journaled.sort_by(|a, b| (&a.config, a.trial).cmp(&(&b.config, b.trial)));
    let mut partial_sorted = partial.trials.clone();
    partial_sorted.sort_by(|a, b| (&a.config, a.trial).cmp(&(&b.config, b.trial)));
    assert_eq!(journaled, partial_sorted);

    let resumed_serial =
        run_sweep(&contents.records, None, &mut |rec| w.record(rec).unwrap());
    drop(w);
    assert_eq!(resumed_serial.table(), uninterrupted.table());
    assert_eq!(resumed_serial.trials, uninterrupted.trials);
    assert_eq!(resumed_serial.to_csv(), uninterrupted.to_csv());

    // The journal now covers the full grid (in whatever append order);
    // a parallel resume from it adopts every cell and re-runs nothing.
    let full = read_journal(&path).unwrap();
    let mut reran = 0usize;
    let resumed_parallel =
        run_sweep_parallel(&full.records, None, 7, &mut |_| reran += 1);
    assert_eq!(reran, 0, "a complete journal leaves nothing to re-run");
    assert_eq!(resumed_parallel.trials, uninterrupted.trials);
    assert_eq!(resumed_parallel.to_json(), uninterrupted.to_json());
    std::fs::remove_file(&path).ok();
}

/// Degraded outcomes survive the journal round trip exactly — outcome
/// label, evacuation count, cycles — so a resumed table renders
/// degraded rows identically to the original run.
#[test]
fn degraded_records_round_trip_through_the_journal() {
    let path = temp_journal("degraded");
    let fp = grid_fingerprint("degraded-grid");
    let mut w = JournalWriter::create(&path, &fp, "degraded-grid").unwrap();
    let report = run_sweep(&[], None, &mut |rec| w.record(rec).unwrap());
    drop(w);
    let back = read_journal(&path).unwrap();
    assert_eq!(back.records, report.trials);
    assert!(
        back.records.iter().any(|t| t.outcome == Outcome::Degraded),
        "the grid must exercise a degraded cell"
    );
    std::fs::remove_file(&path).ok();
}

/// Regression for the `--retries 0` + `--trial-budget` conflation: a
/// blown budget is `Outcome::Timeout` with a structured timeout error,
/// a hard fault is `Outcome::Faulted` — and both must survive the
/// journal round trip *distinctly*, down to the CSV labels. Before the
/// fix, a timeout recorded in one worker could be re-labelled as the
/// faulting sibling's error on the way out.
#[test]
fn timeout_and_faulted_outcomes_round_trip_distinctly() {
    use nqp::core::runner::SweepReport;

    let trials = vec![
        TrialRecord {
            config: "budget-blown".into(),
            trial: 0,
            outcome: Outcome::Timeout,
            cycles: None,
            attempts: 1,
            evacuated_pages: 0,
            error: Some(SimError::Timeout { budget_cycles: 5_000_000, elapsed_cycles: 7_250_000 }),
        },
        TrialRecord {
            config: "deadline-blown".into(),
            trial: 0,
            outcome: Outcome::Timeout,
            cycles: None,
            attempts: 1,
            evacuated_pages: 0,
            error: Some(SimError::DeadlineExceeded {
                deadline_cycles: 4_000_000,
                elapsed_cycles: 4_900_000,
            }),
        },
        TrialRecord {
            config: "hard-fault".into(),
            trial: 0,
            outcome: Outcome::Faulted,
            cycles: None,
            attempts: 3,
            evacuated_pages: 0,
            error: Some(SimError::NodeOffline { node: 1 }),
        },
    ];

    let path = temp_journal("outcomes");
    let fp = grid_fingerprint("outcome-grid");
    let mut w = JournalWriter::create(&path, &fp, "outcome-grid").unwrap();
    for t in &trials {
        w.record(t).unwrap();
    }
    drop(w);

    let back = read_journal(&path).unwrap();
    assert!(!back.torn);
    assert_eq!(back.records, trials, "records round-trip exactly");
    assert_eq!(back.records[0].outcome, Outcome::Timeout);
    assert_eq!(back.records[2].outcome, Outcome::Faulted);
    assert_ne!(
        back.records[0].error, back.records[2].error,
        "the timeout's structured error must not be replaced by the fault's"
    );

    // The rendered CSV keeps the outcomes distinguishable.
    let report = SweepReport { trials: back.records, interrupted: false };
    let csv = report.to_csv();
    assert!(csv.contains("budget-blown,0,timeout,"), "{csv}");
    assert!(csv.contains("deadline-blown,0,timeout,"), "{csv}");
    assert!(csv.contains("hard-fault,0,faulted,"), "{csv}");
    std::fs::remove_file(&path).ok();
}
