//! `nqp-cli` — run the paper's experiments from the command line.
//!
//! ```text
//! nqp-cli machines
//! nqp-cli advise [--managed] [--cache-bound] [--no-root] [--placed]
//!                [--alloc-light] [--mem-tight]
//! nqp-cli workload w1|w2|w3|w4 [--machine A|B|C] [--threads N]
//!                [--alloc NAME] [--policy first-touch|interleave|localalloc|preferred|bind]
//!                [--placement sparse|dense|none] [--autonuma on|off]
//!                [--thp on|off] [--n N] [--card N] [--index NAME] [--seed N]
//!                [--faults SPEC] [--trial-budget CYCLES] [--tier SPEC]
//!                [--engine tuple|vec] [--batch-size N]
//! nqp-cli compare w1|w2|w3|w4 [--machine A|B|C]      # default vs tuned
//! nqp-cli sweep w1|w2|w3|w4|wshift [--trials N] [--retries N] [--faults SPEC]
//!                [--trial-budget CYCLES] [--machine A|B|C|S|machine_b_cxl] [--jobs N]
//!                [--shards N] [--advisor online[,autonuma]] [--tier SPEC[+SPEC..]]
//!                [--engine E[+E..]] [--batch-size N]
//!                [--journal PATH | --resume PATH] [--max-cells N]
//!                [--watchdog CYCLES] [--retry-budget N] [--breaker K]
//!                [--csv FILE] [--json FILE]
//!                [--trace-dir DIR] [--trace-epoch CYCLES]
//! nqp-cli hotpath w1|w3 [--machine A|B|C] [--threads N] [--n N] [--card N] [--reps K]
//!                [--engine tuple|vec]
//! nqp-cli trace FILE [--chrome OUT] [--csv OUT] [--decisions OUT] [--report]
//! nqp-cli tpch QNUM [--system NAME] [--sf F] [--tuned] [--engine tuple|vec]
//! ```
//!
//! `--faults` takes the deterministic fault-plan grammar of
//! `FaultPlan::parse`, e.g. `alloc@2:attempts=1;link@0..9:link=1,lat=2.5`
//! or `offline@3:node=1` for a sticky node outage. `sweep` runs every
//! trial of every configuration to completion and exits nonzero only if
//! *every* trial of some configuration failed; trials that survive a
//! node outage by evacuating its memory are reported `degraded`.
//!
//! `--journal PATH` appends each finished `(config, trial)` cell to a
//! fsync'd write-ahead journal; after a crash or Ctrl-C, rerun the same
//! sweep with `--resume PATH` to skip the journaled cells and produce a
//! final table bit-identical to an uninterrupted run.
//!
//! `--jobs N` (default 1 = the serial path) fans configurations across
//! N worker threads; the table/CSV/JSON output is byte-identical to the
//! serial run and the journal stays resumable, serial or parallel (the
//! one semantic shift: `--retry-budget` becomes a deterministic
//! per-config quota of `ceil(budget / configs)` so admission never
//! depends on scheduling order).
//!
//! `--shards N` (default 1) spreads the simulated workers of each
//! *single* trial across N host threads; like `--jobs`, every output is
//! byte-identical for any shard count, so the two compose freely and
//! neither enters the grid fingerprint.
//!
//! `--tier` installs the tiered-memory daemon on machines with a slow
//! tier (`machine_b_cxl`, `numa_small_nvm`): `none`,
//! `lru-epoch[:idle=N,budget=N]`, or
//! `hot-watermark[:dwm=N,pwm=N,budget=N]`. On `sweep` a `+`-separated
//! list crosses every contender with each policy (the knobs × tiering
//! study); unlike `--jobs`/`--shards` it changes what runs, so it
//! enters the grid fingerprint.
//!
//! `--engine tuple|vec` picks the operator path: the tuple-at-a-time
//! oracle or the batch-at-a-time vectorized path. Both compute
//! byte-identical query results (the `checksum:` line); only the
//! charged cycles move, so — like `--tier` — it enters the grid
//! fingerprint, and on `sweep` a `+` list (`--engine tuple+vec`)
//! crosses every contender with each path. `--batch-size N` only
//! resizes the vectorized path's host-side staging buffers (the
//! simulated stream is fixed at the 32-word column run), so it can
//! never change results; 0 and absurd sizes are rejected.

use nqp::advisor::ControllerConfig;
use nqp::alloc::AllocatorKind;
use nqp::core::advisor::{advise, WorkloadProfile};
use nqp::core::journal::{grid_fingerprint, JournalWriter};
use nqp::core::executor::sweep_parallel;
use nqp::core::runner::{
    sweep_supervised, RetryPolicy, SupervisorPolicy, TrialMeasurement, TrialRecord,
};
use nqp::core::{AdvisorMode, TuningConfig};
use nqp::datagen::tpch::TpchData;
use nqp::datagen::{generate, JoinDataset};
use nqp::engines::{query_name, DbSystem, SystemKind};
use nqp::indexes::IndexKind;
use nqp::query::{
    parse_batch_size, try_run_aggregation_on, try_run_hash_join_on, try_run_inl_join_on,
    try_run_phase_shift, AggConfig, AggKind, EngineKind, PhaseShiftConfig, WorkloadEnv,
    DEFAULT_BATCH_SIZE,
};
use nqp::sim::{
    Access, Counters, FaultPlan, MemPolicy, NumaSim, SimError, SimResult, ThreadPlacement,
    TraceConfig, TraceLog,
};
use nqp::serve::{
    arrival::parse_milli, run_cells, ArrivalSpec, CellInput, CellStats, ClassProfile,
    OutageSpec, ServeAdvisor, ServeSpec, Session,
};
use nqp::tier::TierSpec;
use nqp::topology::{machines, MachineSpec};
use nqp::trace::{artifact_name, sessions_to_chrome_json, slug, SessionSpan, Trace, TraceMeta};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match cmd.as_str() {
        "machines" => cmd_machines(),
        "advise" => cmd_advise(&args[1..]),
        "workload" => cmd_workload(&args[1..]),
        "compare" => cmd_compare(&args[1..]),
        "sweep" => cmd_sweep(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "hotpath" => cmd_hotpath(&args[1..]),
        "trace" => cmd_trace(&args[1..]),
        "tpch" => cmd_tpch(&args[1..]),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  nqp-cli machines
  nqp-cli advise [--managed] [--cache-bound] [--no-root] [--placed] [--alloc-light] [--mem-tight]
  nqp-cli workload <w1|w2|w3|w4> [options] [--faults SPEC] [--trial-budget CYCLES] [--tier SPEC]
                [--engine tuple|vec] [--batch-size N]
  nqp-cli compare <w1|w2|w3|w4> [--machine A|B|C]
  nqp-cli sweep <w1|w2|w3|w4|wshift> [--trials N] [--retries N] [--faults SPEC] [--trial-budget CYCLES]
                [--advisor online[,autonuma]] [--tier SPEC[+SPEC..]]
                [--engine tuple|vec|tuple+vec] [--batch-size N]
                [--jobs N] [--shards N] [--journal PATH | --resume PATH]
                [--max-cells N] [--watchdog CYCLES]
                [--retry-budget N] [--breaker K] [--csv FILE] [--json FILE]
                [--trace-dir DIR] [--trace-epoch CYCLES]
  nqp-cli serve <w1|w2|w3|w4[,..]> [--tenants N] [--duration MCYCLES] [--arrivals SPEC]
                [--lanes N] [--queue-cap N] [--tokens N] [--refill R] [--deadline MCYCLES]
                [--breaker K] [--epoch MCYCLES] [--outage T1..T2:node=N]
                [--advisor static|online[:rearm=N]] [--tier SPEC]
                [--configs both|os-default|tuned] [--engine tuple|vec] [--jobs N] [--shards N]
                [--journal PATH | --resume PATH] [--max-cells N]
                [--csv FILE] [--json FILE] [--trace-dir DIR]
                (arrivals: poisson:rate=R | burst:rate=R,x=M,on=A,off=B | diurnal:rate=R,x=M,period=P)
                (tier: none | lru-epoch[:idle=N,budget=N] | hot-watermark[:dwm=N,pwm=N,budget=N])
  nqp-cli hotpath <w1|w3> [--machine A|B|C] [--threads N] [--n N] [--card N] [--reps K]
                [--engine tuple|vec] [--policy ...] [--autonuma on|off] [--thp on|off]   # NQP_REFERENCE=1 for the oracle
  nqp-cli trace <FILE.trace> [--chrome OUT.json] [--csv OUT.csv] [--decisions OUT.csv] [--report]
  nqp-cli tpch <1..22> [--system monetdb|postgresql|mysql|dbmsx|quickstep] [--sf 0.005] [--tuned]
                [--engine tuple|vec]
  (see `nqp-cli workload --help` equivalents in the README)";

/// Parse `--key value` / `--flag` argument lists.
fn parse_flags(args: &[String]) -> Result<(Vec<String>, HashMap<String, String>), String> {
    let mut positional = Vec::new();
    let mut flags = HashMap::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            let takes_value = it
                .peek()
                .is_some_and(|next| !next.starts_with("--"));
            if takes_value {
                flags.insert(name.to_string(), it.next().expect("peeked").clone());
            } else {
                flags.insert(name.to_string(), String::new());
            }
        } else {
            positional.push(a.clone());
        }
    }
    Ok((positional, flags))
}

fn machine_arg(flags: &HashMap<String, String>) -> Result<MachineSpec, String> {
    let name = flags.get("machine").map(String::as_str).unwrap_or("A");
    nqp::sim::machine_by_name(name).map_err(|e| e.to_string())
}

/// Parse `--tier` as a `+`-separated list of tiering specs — commas
/// belong to each spec's knob grammar (`hot-watermark:dwm=64,pwm=4`),
/// so crossing several policies in one sweep uses `+`:
/// `--tier none+lru-epoch+hot-watermark:pwm=2`. Absent flag = `none`.
fn tier_arg(flags: &HashMap<String, String>) -> Result<Vec<TierSpec>, String> {
    let Some(list) = flags.get("tier") else {
        return Ok(vec![TierSpec::NONE]);
    };
    let specs: Vec<TierSpec> = list
        .split('+')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| TierSpec::parse(s).map_err(|e| e.to_string()))
        .collect::<Result<_, _>>()?;
    if specs.is_empty() {
        return Err("empty --tier list (none, lru-epoch, hot-watermark)".to_string());
    }
    Ok(specs)
}

/// The single-policy form of [`tier_arg`], for commands that run one
/// configuration rather than a sweep grid.
fn single_tier_arg(flags: &HashMap<String, String>) -> Result<TierSpec, String> {
    let specs = tier_arg(flags)?;
    match specs[..] {
        [one] => Ok(one),
        _ => Err("this command takes a single --tier policy (`+` lists are for sweep)"
            .to_string()),
    }
}

/// Parse `--engine` as a `+`-separated list of operator paths, the
/// [`tier_arg`] pattern: `tuple`, `vec`, or `tuple+vec` to cross both
/// in one sweep. Absent flag = `tuple` (the differential oracle).
fn engine_arg(flags: &HashMap<String, String>) -> Result<Vec<EngineKind>, String> {
    let Some(list) = flags.get("engine") else {
        return Ok(vec![EngineKind::Tuple]);
    };
    let kinds: Vec<EngineKind> = list
        .split('+')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| EngineKind::parse(s).map_err(|e| e.to_string()))
        .collect::<Result<_, _>>()?;
    if kinds.is_empty() {
        return Err("empty --engine list (tuple, vec)".to_string());
    }
    Ok(kinds)
}

/// The single-engine form of [`engine_arg`], for commands that run one
/// configuration rather than a sweep grid.
fn single_engine_arg(flags: &HashMap<String, String>) -> Result<EngineKind, String> {
    let kinds = engine_arg(flags)?;
    match kinds[..] {
        [one] => Ok(one),
        _ => Err("this command takes a single --engine (`+` lists are for sweep)"
            .to_string()),
    }
}

fn cmd_machines() -> Result<(), String> {
    for m in machines::paper_machines() {
        // Memory sizes in MB: the tiering machines carry deliberately
        // tiny DRAM nodes (a GB display would round them to 0).
        let mem: Vec<String> = (0..m.topology.num_nodes())
            .map(|n| {
                let mb = m.mem_bytes_of_node(n) >> 20;
                let tier = m.tier_of(n);
                if tier.is_slow() {
                    format!(
                        "{mb}MB slow(r×{} w×{} bw×{})",
                        tier.read_factor(),
                        tier.write_factor(),
                        tier.bandwidth_factor()
                    )
                } else {
                    format!("{mb}MB")
                }
            })
            .collect();
        println!(
            "Machine {}: {} — {} nodes ({}), {} cores / {} threads, LLC {} MB/node, mem/node [{}], latency tiers {:?}",
            m.name,
            m.cpu_model,
            m.topology.num_nodes(),
            m.topology.name(),
            m.total_cores(),
            m.total_hw_threads(),
            m.llc.size_bytes >> 20,
            mem.join(", "),
            m.topology.latency_tiers(),
        );
    }
    Ok(())
}

fn cmd_advise(args: &[String]) -> Result<(), String> {
    let (_, flags) = parse_flags(args)?;
    let profile = WorkloadProfile {
        threads_managed: flags.contains_key("managed"),
        memory_bandwidth_bound: !flags.contains_key("cache-bound"),
        superuser: !flags.contains_key("no-root"),
        memory_placement_defined: flags.contains_key("placed"),
        allocation_heavy: !flags.contains_key("alloc-light"),
        free_memory_constrained: flags.contains_key("mem-tight"),
    };
    println!("{}", advise(&profile).describe());
    Ok(())
}

/// Build a TuningConfig from CLI flags over the OS default.
fn config_from_flags(
    machine: MachineSpec,
    flags: &HashMap<String, String>,
) -> Result<TuningConfig, String> {
    let mut cfg = TuningConfig::os_default(machine);
    if let Some(p) = flags.get("placement") {
        cfg = cfg.with_threads(match p.as_str() {
            "sparse" => ThreadPlacement::Sparse,
            "dense" => ThreadPlacement::Dense,
            "none" => ThreadPlacement::None,
            other => return Err(format!("unknown placement `{other}`")),
        });
    }
    if let Some(p) = flags.get("policy") {
        cfg = cfg.with_policy(match p.as_str() {
            "first-touch" => MemPolicy::FirstTouch,
            "interleave" => MemPolicy::Interleave,
            "localalloc" => MemPolicy::Localalloc,
            "preferred" => MemPolicy::Preferred(0),
            // Strict membind: allocations on a full node 0 fail with
            // OOM instead of spilling, like `numactl --membind=0`.
            "bind" => MemPolicy::Bind(0),
            other => return Err(format!("unknown policy `{other}`")),
        });
    }
    for (flag, setter) in [("autonuma", 0usize), ("thp", 1)] {
        if let Some(v) = flags.get(flag) {
            let on = match v.as_str() {
                "on" | "1" | "true" => true,
                "off" | "0" | "false" => false,
                other => return Err(format!("--{flag} takes on/off, got `{other}`")),
            };
            cfg = if setter == 0 { cfg.with_autonuma(on) } else { cfg.with_thp(on) };
        }
    }
    if let Some(a) = flags.get("alloc") {
        let kind = AllocatorKind::parse(a).ok_or_else(|| format!("unknown allocator `{a}`"))?;
        cfg = cfg.with_allocator(kind);
    }
    if let Some(s) = flags.get("seed") {
        let seed: u64 = s.parse().map_err(|_| format!("bad seed `{s}`"))?;
        cfg.sim = cfg.sim.with_seed(seed);
    }
    if let Some(spec) = flags.get("faults") {
        let plan = FaultPlan::parse(spec, cfg.sim.seed).map_err(|e| e.to_string())?;
        cfg = cfg.with_faults(plan);
    }
    if let Some(b) = flags.get("trial-budget") {
        let cycles: u64 = b.parse().map_err(|_| format!("bad --trial-budget `{b}`"))?;
        cfg = cfg.with_trial_budget(cycles);
    }
    // --batch-size only resizes the vectorized path's host-side staging
    // buffers; the simulated access stream is fixed at the column run
    // width, so results never move with it. Zero and overflow are typed
    // BadSpec errors (nonzero exit), not silent clamps.
    if let Some(b) = flags.get("batch-size") {
        cfg = cfg.with_batch(parse_batch_size(b).map_err(|e| e.to_string())?);
    }
    // --shards N spreads one trial's simulated workers over N host
    // threads. Results are byte-identical for every shard count (the
    // check.sh gate), so — like --jobs — it is excluded from grid
    // fingerprints and never changes what a sweep reports.
    if let Some(s) = flags.get("shards") {
        let shards: usize = s
            .parse()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or_else(|| format!("bad --shards `{s}` (want an integer >= 1)"))?;
        cfg.sim = cfg.sim.with_shards(shards);
    }
    // NQP_REFERENCE=1 runs the per-line reference model instead of the
    // page-granular fast path. Both produce bit-identical results (an
    // invariant scripts/check.sh pins), so this is an env var rather
    // than a grid flag: it must never change what a sweep reports.
    if std::env::var("NQP_REFERENCE").is_ok_and(|v| v != "0" && !v.is_empty()) {
        cfg.sim = cfg.sim.with_reference_model(true);
    }
    Ok(cfg)
}

fn counters_summary(c: &Counters) -> String {
    format!(
        "migrations={} page-migrations={} cache-misses={} LAR={:.0}% lock-waits={}",
        c.thread_migrations,
        c.page_migrations,
        c.cache_misses,
        c.local_access_ratio() * 100.0,
        c.lock_wait_cycles
    )
}

/// A workload with its input data pre-generated, so sweeps can replay
/// the exact same work under many environments (and fault attempts)
/// without paying datagen per trial.
enum WorkloadPlan {
    Agg { acfg: AggConfig, records: Vec<nqp::datagen::Record> },
    Hash { data: JoinDataset },
    Inl { index: IndexKind, data: JoinDataset },
    Shift { cfg: PhaseShiftConfig },
}

impl WorkloadPlan {
    fn parse(which: &str, flags: &HashMap<String, String>) -> Result<Self, String> {
        let seed: u64 = flags.get("seed").and_then(|s| s.parse().ok()).unwrap_or(42);
        match which {
            "w1" | "w2" => {
                let n: usize =
                    flags.get("n").and_then(|s| s.parse().ok()).unwrap_or(300_000);
                let card: u64 =
                    flags.get("card").and_then(|s| s.parse().ok()).unwrap_or(75_000);
                let mut acfg = if which == "w1" {
                    AggConfig::w1(n, card, seed)
                } else {
                    AggConfig::w2(n, card, seed)
                };
                if acfg.kind == AggKind::DistributiveCount {
                    acfg.cardinality = card;
                }
                let records = generate(acfg.dataset, n, card, seed);
                Ok(WorkloadPlan::Agg { acfg, records })
            }
            "w3" => {
                let r: usize =
                    flags.get("n").and_then(|s| s.parse().ok()).unwrap_or(30_000);
                Ok(WorkloadPlan::Hash { data: JoinDataset::generate(r, seed) })
            }
            "w4" => {
                let r: usize =
                    flags.get("n").and_then(|s| s.parse().ok()).unwrap_or(20_000);
                let index = match flags.get("index").map(String::as_str).unwrap_or("B+tree")
                {
                    "art" | "ART" => IndexKind::Art,
                    "masstree" | "Masstree" => IndexKind::Masstree,
                    "btree" | "B+tree" => IndexKind::BPlusTree,
                    "skiplist" | "Skip List" => IndexKind::SkipList,
                    other => return Err(format!("unknown index `{other}`")),
                };
                Ok(WorkloadPlan::Inl { index, data: JoinDataset::generate(r, seed) })
            }
            "wshift" => {
                // The build phase scans thread-private partitions; the
                // probe phase hammers one node's shared table — no
                // static placement wins both, which is the workload the
                // online advisor exists for.
                let mut cfg = PhaseShiftConfig::small(seed);
                if let Some(n) = flags.get("n").and_then(|s| s.parse().ok()) {
                    cfg.shared_n = n;
                    cfg.private_n = n * 2;
                }
                Ok(WorkloadPlan::Shift { cfg })
            }
            other => Err(format!("unknown workload `{other}` (w1, w2, w3, w4, wshift)")),
        }
    }

    /// Run once under `env`, surfacing simulation faults (OOM under a
    /// strict bind, injected failures, budget timeouts) as errors.
    fn try_run(&self, env: &WorkloadEnv) -> SimResult<RunOut> {
        match self {
            WorkloadPlan::Agg { acfg, records } => {
                let out = try_run_aggregation_on(env, acfg, records)?;
                Ok(RunOut {
                    cycles: out.exec_cycles,
                    checksum: out.checksum,
                    counters: out.counters,
                    trace: out.trace,
                })
            }
            WorkloadPlan::Hash { data } => {
                let out = try_run_hash_join_on(env, data)?;
                Ok(RunOut {
                    cycles: out.build_cycles + out.probe_cycles,
                    checksum: out.checksum,
                    counters: out.counters,
                    trace: out.trace,
                })
            }
            WorkloadPlan::Inl { index, data } => {
                let out = try_run_inl_join_on(env, *index, data)?;
                Ok(RunOut {
                    cycles: out.build_cycles + out.join_cycles,
                    checksum: out.checksum,
                    counters: out.counters,
                    trace: out.trace,
                })
            }
            WorkloadPlan::Shift { cfg } => {
                let out = try_run_phase_shift(env, cfg)?;
                Ok(RunOut {
                    cycles: out.exec_cycles,
                    checksum: out.checksum,
                    counters: out.counters,
                    trace: out.trace,
                })
            }
        }
    }
}

/// One workload run's observables: the simulated latency, the
/// result checksum (the engine-identity invariant `--engine` pins),
/// the counters, and the trace log when tracing was configured.
struct RunOut {
    cycles: u64,
    checksum: u64,
    counters: Counters,
    trace: Option<TraceLog>,
}

fn run_workload(
    which: &str,
    cfg: &TuningConfig,
    threads: usize,
    flags: &HashMap<String, String>,
) -> Result<RunOut, String> {
    let plan = WorkloadPlan::parse(which, flags)?;
    plan.try_run(&cfg.env(threads))
        .map_err(|e| format!("simulation fault: {e}"))
}

fn cmd_workload(args: &[String]) -> Result<(), String> {
    let (pos, flags) = parse_flags(args)?;
    let which = pos.first().ok_or("workload needs w1|w2|w3|w4")?;
    let machine = machine_arg(&flags)?;
    let threads: usize = flags
        .get("threads")
        .and_then(|s| s.parse().ok())
        .unwrap_or(machine.total_hw_threads());
    let cfg = config_from_flags(machine, &flags)?
        .with_tier(single_tier_arg(&flags)?)
        .with_engine(single_engine_arg(&flags)?);
    let out = run_workload(which, &cfg, threads, &flags)?;
    let (cycles, counters) = (out.cycles, out.counters);
    println!("{which} on machine {} with {} threads:", cfg.sim.machine.name, threads);
    println!(
        "  placement={} policy={} autonuma={} thp={} allocator={} tier={} engine={}",
        cfg.sim.thread_placement.label(),
        cfg.sim.mem_policy.label(),
        cfg.sim.autonuma,
        cfg.sim.thp,
        cfg.allocator.label(),
        cfg.tier.label(),
        cfg.engine.as_str()
    );
    println!("  cycles: {cycles}");
    // Machine-readable result checksum: scripts/check.sh diffs this
    // line between `--engine tuple` and `--engine vec` runs — the
    // vectorized path must compute byte-identical query results.
    println!("  checksum: 0x{:016x}", out.checksum);
    if cfg.sim.machine.has_slow_tier() {
        println!(
            "  promotions={} demotions={} slow-tier-hits={} slow-tier-hit-ratio={:.1}%",
            counters.promotions,
            counters.demotions,
            counters.slow_tier_hits,
            counters.slow_tier_hit_ratio() * 100.0
        );
    }
    println!("  {}", counters_summary(&counters));
    Ok(())
}

fn cmd_compare(args: &[String]) -> Result<(), String> {
    let (pos, flags) = parse_flags(args)?;
    let which = pos.first().ok_or("compare needs w1|w2|w3|w4")?;
    let machine = machine_arg(&flags)?;
    let threads = machine.total_hw_threads();
    let default = TuningConfig::os_default(machine.clone());
    let tuned = TuningConfig::tuned(machine);
    let d = run_workload(which, &default, threads, &flags)?.cycles;
    let t = run_workload(which, &tuned, threads, &flags)?.cycles;
    println!("{which}: os-default {d} cycles, tuned {t} cycles -> {:.2}x", d as f64 / t as f64);
    Ok(())
}

/// `hotpath`: a microbenchmark of the simulator's memory-hierarchy hot
/// loop (`Worker::touch` and the page-granular fast path behind it),
/// replaying a deterministic access stream shaped like a workload's
/// inner loop — W1's scan + hash-scattered upserts, or W3's build +
/// probe — without the host-side operator logic (hash walks, sorts,
/// `Vec` traffic) that dilutes and noises full-workload timings.
///
/// The stream is identical regardless of `reference_model`, so running
/// it twice — plain and under `NQP_REFERENCE=1` — times the fast path
/// against the per-line oracle on the same simulated work; the final
/// `cycles=` value must match between the two (scripts/bench.sh checks
/// this). Prints wall-ns (best of `--reps`) plus a machine-readable
/// `hotpath_ns=` line.
fn cmd_hotpath(args: &[String]) -> Result<(), String> {
    let (pos, flags) = parse_flags(args)?;
    let which = pos.first().map(String::as_str).unwrap_or("w1");
    let machine = machine_arg(&flags)?;
    let threads: usize = flags.get("threads").and_then(|s| s.parse().ok()).unwrap_or(8);
    let reps: usize = flags.get("reps").and_then(|s| s.parse().ok()).unwrap_or(3).max(1);
    // `--engine vec` replays the vectorized operators' access stream:
    // direct perfect-hash slot updates and ranged column reads instead
    // of hash + directory walk + chain entries. Fewer simulator calls
    // per tuple is exactly where the vectorized path's host wall-time
    // win comes from, and this microbench isolates it
    // (scripts/bench.sh `vector_speedup` times both engines here).
    let engine = single_engine_arg(&flags)?;
    let cfg = config_from_flags(machine, &flags)?;
    let model = if cfg.sim.reference_model { "reference" } else { "fast" };
    let seed = cfg.sim.seed;

    // Partition `count` items across `threads` like TupleArray::partition.
    let slice = |count: u64, tid: usize| -> (u64, u64) {
        let t = threads as u64;
        (count * tid as u64 / t, count * (tid as u64 + 1) / t)
    };
    let lcg =
        |x: u64| x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    let page_up = |b: u64| b.div_ceil(4096) * 4096;

    let mut sim = NumaSim::new(cfg.sim.clone());
    let (best_ns, lines_per_rep, label) = match which {
        "w1" => {
            let n: u64 = flags.get("n").and_then(|s| s.parse().ok()).unwrap_or(1_000_000);
            let card: u64 =
                flags.get("card").and_then(|s| s.parse().ok()).unwrap_or(n / 10).max(1);
            // Input tuples, hash directory, entry/chain heap — the three
            // address spaces W1's build loop bounces between.
            let mut bases = (0u64, 0u64, 0u64);
            sim.try_serial(&mut bases, |w, b| {
                b.0 = w.map_pages(page_up(n * 16));
                b.1 = w.map_pages(page_up(card * 2 * 8));
                b.2 = w.map_pages(page_up(n * 24));
            })
            .map_err(|e| e.to_string())?;
            let (input, dir, heap) = bases;
            let dir_slots = card * 2;
            let mut best = u64::MAX;
            for _ in 0..reps {
                let t = std::time::Instant::now();
                // Scan: the batched input read of the build loop
                // (32 tuples = 512 B per ranged touch).
                sim.try_parallel(threads, &mut (), |w, _| {
                    let (start, end) = slice(n, w.tid());
                    let mut i = start;
                    while i < end {
                        let k = (end - i).min(32);
                        w.touch(input + i * 16, k * 16, Access::Read);
                        i += k;
                    }
                })
                .map_err(|e| e.to_string())?;
                // Build. Tuple: per tuple one hash charge, one
                // directory read, one entry read, one entry write —
                // W1's upsert + chain push shape. Vec: one direct
                // perfect-hash slot update per tuple, nothing else.
                sim.try_parallel(threads, &mut (), |w, _| {
                    let (start, end) = slice(n, w.tid());
                    let mut x = seed ^ (0x9e37 + w.tid() as u64);
                    match engine {
                        EngineKind::Tuple => {
                            for _ in start..end {
                                x = lcg(x);
                                w.compute(6);
                                w.touch(dir + (x >> 33) % dir_slots * 8, 8, Access::Read);
                                x = lcg(x);
                                let e = heap + (x >> 33) % n * 24;
                                w.touch(e, 24, Access::Read);
                                w.touch(e + 8, 16, Access::Write);
                            }
                        }
                        EngineKind::Vectorized => {
                            for _ in start..end {
                                x = lcg(x);
                                w.touch(dir + (x >> 33) % dir_slots * 8, 8, Access::Write);
                            }
                        }
                    }
                })
                .map_err(|e| e.to_string())?;
                // Finalize. Tuple: sequential entry walk + one chain
                // hop each. Vec: ranged 32-word reads over the slot
                // array — the batched finalize scan.
                sim.try_parallel(threads, &mut (), |w, _| {
                    match engine {
                        EngineKind::Tuple => {
                            let (start, end) = slice(n, w.tid());
                            let mut x = seed ^ (0x51ed + w.tid() as u64);
                            for i in start..end {
                                w.touch(heap + i * 24, 24, Access::Read);
                                x = lcg(x);
                                w.touch(heap + (x >> 33) % n * 8, 8, Access::Read);
                            }
                        }
                        EngineKind::Vectorized => {
                            let (start, end) = slice(dir_slots, w.tid());
                            let mut i = start;
                            while i < end {
                                let k = (end - i).min(32);
                                w.touch(dir + i * 8, k * 8, Access::Read);
                                i += k;
                            }
                        }
                    }
                })
                .map_err(|e| e.to_string())?;
                best = best.min(t.elapsed().as_nanos() as u64);
            }
            let lines = match engine {
                // scan n/4 + build ~4n + finalize ~3n lines, roughly.
                EngineKind::Tuple => n * 7 + n / 4,
                // scan n/4 + build n slot lines + finalize slots/8.
                EngineKind::Vectorized => n + n / 4 + dir_slots / 8,
            };
            (best, lines, format!("w1 n={n} card={card}"))
        }
        "w3" => {
            let r: u64 = flags.get("n").and_then(|s| s.parse().ok()).unwrap_or(200_000);
            let s_len = r * 16;
            let mut bases = (0u64, 0u64, 0u64, 0u64);
            sim.try_serial(&mut bases, |w, b| {
                b.0 = w.map_pages(page_up(r * 16));
                b.1 = w.map_pages(page_up(s_len * 16));
                b.2 = w.map_pages(page_up(r * 2 * 8));
                b.3 = w.map_pages(page_up(r * 24));
            })
            .map_err(|e| e.to_string())?;
            let (r_arr, s_arr, dir, heap) = bases;
            let dir_slots = r * 2;
            let mut best = u64::MAX;
            for _ in 0..reps {
                let t = std::time::Instant::now();
                // Build: scan R, insert each tuple. Tuple: hash charge +
                // directory read + entry write. Vec: direct tag + payload
                // slot writes, no hash and no directory indirection.
                sim.try_parallel(threads, &mut (), |w, _| {
                    let (start, end) = slice(r, w.tid());
                    let mut x = seed ^ (0xb10c + w.tid() as u64);
                    let mut i = start;
                    while i < end {
                        let k = (end - i).min(32);
                        w.touch(r_arr + i * 16, k * 16, Access::Read);
                        for _ in 0..k {
                            x = lcg(x);
                            match engine {
                                EngineKind::Tuple => {
                                    w.compute(6);
                                    w.touch(dir + (x >> 33) % dir_slots * 8, 8, Access::Read);
                                    x = lcg(x);
                                    w.touch(heap + (x >> 33) % r * 24, 24, Access::Write);
                                }
                                EngineKind::Vectorized => {
                                    let s = (x >> 33) % r;
                                    w.touch(dir + s * 8, 8, Access::Write);
                                    w.touch(heap + s * 8, 8, Access::Write);
                                }
                            }
                        }
                        i += k;
                    }
                })
                .map_err(|e| e.to_string())?;
                // Probe: scan S, look each tuple up. Tuple: hash charge +
                // directory read + entry read per tuple. Vec: ranged key
                // and value column reads per 32, then one tag read and
                // one payload gather per tuple.
                sim.try_parallel(threads, &mut (), |w, _| {
                    let (start, end) = slice(s_len, w.tid());
                    let mut x = seed ^ (0x9406 + w.tid() as u64);
                    let mut i = start;
                    while i < end {
                        let k = (end - i).min(32);
                        match engine {
                            EngineKind::Tuple => {
                                w.touch(s_arr + i * 16, k * 16, Access::Read);
                                for _ in 0..k {
                                    x = lcg(x);
                                    w.compute(6);
                                    w.touch(dir + (x >> 33) % dir_slots * 8, 8, Access::Read);
                                    x = lcg(x);
                                    w.touch(heap + (x >> 33) % r * 24, 24, Access::Read);
                                }
                            }
                            EngineKind::Vectorized => {
                                // Key column run, per-lane tag checks,
                                // value column run, payload gathers.
                                w.touch(s_arr + i * 8, k * 8, Access::Read);
                                let x0 = x;
                                for _ in 0..k {
                                    x = lcg(x);
                                    w.touch(dir + (x >> 33) % r * 8, 8, Access::Read);
                                }
                                w.touch(s_arr + s_len * 8 + i * 8, k * 8, Access::Read);
                                x = x0;
                                for _ in 0..k {
                                    x = lcg(x);
                                    w.touch(heap + (x >> 33) % r * 8, 8, Access::Read);
                                }
                            }
                        }
                        i += k;
                    }
                })
                .map_err(|e| e.to_string())?;
                best = best.min(t.elapsed().as_nanos() as u64);
            }
            let lines = match engine {
                EngineKind::Tuple => r * 5 + s_len * 4,
                EngineKind::Vectorized => r * 3 + s_len * 5 / 2,
            };
            (best, lines, format!("w3 r={r}"))
        }
        other => return Err(format!("hotpath needs w1 or w3, got `{other}`")),
    };
    let cycles = sim.now_cycles();
    println!(
        "hotpath {label} machine={} threads={threads} model={model} engine={} reps={reps}",
        cfg.sim.machine.name,
        engine.as_str()
    );
    println!(
        "  best {:.1} ms  (~{:.0} ns per simulated line)",
        best_ns as f64 / 1e6,
        best_ns as f64 / lines_per_rep as f64
    );
    println!("hotpath_ns={best_ns} lines={lines_per_rep} cycles={cycles}");
    Ok(())
}

/// Canonical description of a sweep grid: everything that changes the
/// final table, in a stable order. Flags that only affect durability or
/// interruption (`--journal`, `--resume`, `--max-cells`) and output
/// destinations (`--csv`, `--json`) are excluded, so a resumed run
/// fingerprints identically to the run it continues.
fn grid_descriptor(
    which: &str,
    machine_name: &str,
    threads: usize,
    trials: usize,
    flags: &HashMap<String, String>,
) -> String {
    let mut kv: Vec<(&str, &str)> = flags
        .iter()
        .filter(|(k, _)| {
            // `jobs` is excluded too: the parallel executor produces the
            // same bytes, so a journal from a --jobs run resumes under
            // any job count (and vice versa). `shards` follows the same
            // contract inside one trial, so it is excluded for the same
            // reason. The trace flags are excluded because tracing
            // never changes cycle results — artifacts are a side
            // output, like `--csv`.
            !matches!(
                k.as_str(),
                "journal" | "resume" | "max-cells" | "csv" | "json"
                    | "machine" | "threads" | "trials" | "jobs" | "shards"
                    | "trace-dir" | "trace-epoch"
            )
        })
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .collect();
    kv.sort_unstable();
    let rest: Vec<String> = kv.iter().map(|(k, v)| format!("{k}={v}")).collect();
    format!(
        "sweep {which} machine={machine_name} threads={threads} trials={trials} {}",
        rest.join(" ")
    )
}

/// `sweep`: os-default and tuned configurations × N trials, through the
/// supervised harness. Transient injected faults are retried with
/// backoff; every other fault is recorded as that trial's outcome.
///
/// With `--journal PATH` every finished cell is appended to a fsync'd
/// write-ahead journal; after a crash or Ctrl-C, `--resume PATH` skips
/// the journaled cells and completes the sweep with a final table
/// bit-identical to an uninterrupted run. `--max-cells N` stops after N
/// fresh cells (deterministic interruption for testing the resume
/// path). `--watchdog`, `--retry-budget` and `--breaker` bound how much
/// a misbehaving configuration can cost. The command fails (nonzero
/// exit) only when every trial of some configuration failed.
fn cmd_sweep(args: &[String]) -> Result<(), String> {
    let (pos, flags) = parse_flags(args)?;
    let which = pos.first().ok_or("sweep needs w1|w2|w3|w4|wshift")?;
    let machine = machine_arg(&flags)?;
    let threads: usize = flags
        .get("threads")
        .and_then(|s| s.parse().ok())
        .unwrap_or(machine.total_hw_threads());
    let trials: usize = flags.get("trials").and_then(|s| s.parse().ok()).unwrap_or(3);
    let retries: u32 = flags.get("retries").and_then(|s| s.parse().ok()).unwrap_or(3);
    let jobs: usize = match flags.get("jobs") {
        Some(s) => s
            .parse()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or_else(|| format!("bad --jobs `{s}` (need an integer >= 1)"))?,
        None => 1,
    };
    let supervisor = SupervisorPolicy {
        retry: RetryPolicy { max_retries: retries, ..RetryPolicy::default() },
        watchdog_budget_cycles: flags.get("watchdog").and_then(|s| s.parse().ok()),
        global_retry_budget: flags.get("retry-budget").and_then(|s| s.parse().ok()),
        breaker_threshold: flags.get("breaker").and_then(|s| s.parse().ok()),
        max_cells: flags.get("max-cells").and_then(|s| s.parse().ok()),
    };
    let trace_dir: Option<PathBuf> = flags.get("trace-dir").map(PathBuf::from);
    let trace_epoch: u64 = match flags.get("trace-epoch") {
        Some(s) => s
            .parse()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or_else(|| format!("bad --trace-epoch `{s}` (need cycles >= 1)"))?,
        None => TraceConfig::default().epoch_cycles,
    };
    if let Some(dir) = &trace_dir {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create --trace-dir `{}`: {e}", dir.display()))?;
    }

    // Both presets get the same fault plan / budget / policy overrides,
    // so an injected fault stresses the whole sweep, not one column.
    let mut configs = vec![
        config_from_flags(machine.clone(), &flags)?
            .named("os-default (+flags)"),
        {
            let tuned = TuningConfig::tuned(machine.clone());
            let mut cfg =
                config_from_flags(machine.clone(), &flags)?.named("tuned (+flags)");
            cfg.sim = cfg
                .sim
                .with_threads(tuned.sim.thread_placement)
                .with_policy(tuned.sim.mem_policy)
                .with_autonuma(tuned.sim.autonuma)
                .with_thp(tuned.sim.thp);
            cfg.allocator = tuned.allocator;
            cfg
        },
    ];
    // `--advisor online[,autonuma]` appends runtime-adaptive contenders:
    // both start from the tuned preset pinned to FirstTouch (the
    // placement the phase shift punishes), then either the epoch-driven
    // controller or the kernel's AutoNUMA model gets to fix it mid-run.
    if let Some(list) = flags.get("advisor") {
        for entry in list.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let tuned = TuningConfig::tuned(machine.clone());
            let mut cfg = config_from_flags(machine.clone(), &flags)?;
            cfg.sim = cfg
                .sim
                .with_threads(tuned.sim.thread_placement)
                .with_policy(MemPolicy::FirstTouch)
                .with_thp(tuned.sim.thp);
            cfg.allocator = tuned.allocator;
            configs.push(match entry {
                "online" => {
                    cfg.sim = cfg.sim.with_autonuma(false);
                    cfg.named("online (+flags)")
                        .with_advisor(AdvisorMode::Online(ControllerConfig::default()))
                }
                "autonuma" => {
                    cfg.sim = cfg.sim.with_autonuma(true);
                    cfg.named("autonuma (+flags)")
                }
                other => {
                    return Err(format!(
                        "unknown --advisor entry `{other}` (online, autonuma)"
                    ))
                }
            });
        }
    }
    // `--tier P1+P2+...` crosses every contender above with each tiering
    // policy — the knobs × policies study. A `none` entry keeps the base
    // column untouched (same name, no daemon), so `--tier none` yields a
    // table byte-identical to omitting the flag.
    let tiers = tier_arg(&flags)?;
    if tiers.iter().any(|t| !t.is_none()) {
        let mut crossed = Vec::with_capacity(configs.len() * tiers.len());
        for cfg in &configs {
            for t in &tiers {
                crossed.push(if t.is_none() {
                    cfg.clone()
                } else {
                    let name = format!("{} tier={}", cfg.name, t.label());
                    cfg.clone().with_tier(*t).named(name)
                });
            }
        }
        configs = crossed;
    }
    // `--engine E1+E2` crosses every contender with each operator path,
    // exactly like `--tier`: a `tuple` entry keeps the base column
    // untouched (same name, default engine), so `--engine tuple` yields
    // a table byte-identical to omitting the flag, and `--engine
    // tuple+vec` puts the oracle and the vectorized path side by side
    // in one grid. The flag enters the grid fingerprint (it changes
    // charged cycles), unlike `--jobs`/`--shards`.
    let engines = engine_arg(&flags)?;
    if engines.iter().any(|e| *e != EngineKind::Tuple) {
        let mut crossed = Vec::with_capacity(configs.len() * engines.len());
        for cfg in &configs {
            for e in &engines {
                crossed.push(if *e == EngineKind::Tuple {
                    cfg.clone()
                } else {
                    let name = format!("{} engine={}", cfg.name, e.as_str());
                    cfg.clone().with_engine(*e).named(name)
                });
            }
        }
        configs = crossed;
    }
    if trace_dir.is_some() {
        // Tracing is pay-for-what-you-use: the hooks charge no cycles,
        // so enabling it here cannot perturb the sweep's results. The
        // config name becomes the trace label (and the artifact slug).
        for cfg in &mut configs {
            cfg.sim = cfg.sim.clone().with_trace(
                TraceConfig::default()
                    .with_epoch_cycles(trace_epoch)
                    .with_label(&cfg.name),
            );
        }
    }

    // An empty grid is a mis-specified sweep, not a vacuous success:
    // fail loudly instead of printing nothing and exiting 0.
    if configs.is_empty() || trials == 0 {
        eprintln!(
            "warning: sweep grid is empty ({} configs x {trials} trials) — nothing to run",
            configs.len()
        );
        return Err("empty sweep grid (use --trials N with N >= 1)".to_string());
    }

    let grid_desc =
        grid_descriptor(which, &configs[0].sim.machine.name, threads, trials, &flags);
    let fp = grid_fingerprint(&grid_desc);

    let mut resumed: Vec<TrialRecord> = Vec::new();
    let mut writer: Option<JournalWriter> = None;
    if let Some(path) = flags.get("resume") {
        let (w, contents) = JournalWriter::append_to(Path::new(path))
            .map_err(|e| format!("cannot resume from `{path}`: {e}"))?;
        if contents.fingerprint != fp {
            return Err(format!(
                "journal `{path}` records a different sweep grid (its fingerprint \
                 {} != requested {fp}); refusing to mix results\n  journal grid:   {}\n  requested grid: {grid_desc}",
                contents.fingerprint, contents.grid_desc
            ));
        }
        if contents.torn {
            eprintln!(
                "note: discarded a torn record at the end of `{path}` \
                 (crash mid-append); that cell will re-run"
            );
        }
        eprintln!(
            "resuming: {} of {} cells already journaled in `{path}`",
            contents.records.len(),
            configs.len() * trials
        );
        resumed = contents.records;
        writer = Some(w);
    } else if let Some(path) = flags.get("journal") {
        writer = Some(
            JournalWriter::create(Path::new(path), &fp, &grid_desc)
                .map_err(|e| format!("cannot create journal `{path}`: {e}"))?,
        );
    }

    let plan = WorkloadPlan::parse(which, &flags)?;
    let mut journal_err: Option<String> = None;
    let report = {
        let mut sink = |rec: &TrialRecord| {
            if let Some(w) = writer.as_mut() {
                if let Err(e) = w.record(rec) {
                    journal_err.get_or_insert_with(|| e.to_string());
                }
            }
        };
        let workload = |env: &WorkloadEnv, trial: usize| {
            let out = plan.try_run(env)?;
            let (cycles, counters, trace) = (out.cycles, out.counters, out.trace);
            // One artifact per (config, trial) cell, named purely from
            // the cell's coordinates — the same cell writes the same
            // bytes to the same path whether it runs serially, under
            // --jobs N, or in a resumed sweep.
            if let (Some(dir), Some(log)) = (&trace_dir, trace) {
                let label = log.config().label.clone();
                let artifact = Trace::from_log(
                    TraceMeta {
                        label: label.clone(),
                        trial: trial as u64,
                        machine: env.sim.machine.name.clone(),
                        threads: env.threads as u64,
                    },
                    &log,
                );
                let path = dir.join(artifact_name(&label, trial));
                artifact.write_file(&path).map_err(|e| SimError::Harness {
                    what: format!("cannot write trace `{}`: {e}", path.display()),
                })?;
            }
            Ok(TrialMeasurement {
                cycles,
                degraded: counters.nodes_offlined > 0 || counters.evacuated_pages > 0,
                evacuated_pages: counters.evacuated_pages,
            })
        };
        if jobs > 1 {
            sweep_parallel(
                &configs, threads, trials, &supervisor, &resumed, jobs, &mut sink,
                workload,
            )
        } else {
            sweep_supervised(
                &configs, threads, trials, &supervisor, &resumed, &mut sink, workload,
            )
        }
    };
    if let Some(e) = journal_err {
        return Err(format!("journal write failed mid-sweep: {e}"));
    }

    println!(
        "{which} sweep on machine {} — {threads} threads, {trials} trials/config:",
        configs[0].sim.machine.name
    );
    print!("{}", report.table());
    for cfg in &configs {
        // Degraded trials ran on a smaller machine (node evacuated);
        // their mean is salvage data, never mixed into the clean mean.
        let clean = report.mean_cycles(&cfg.name);
        let degraded = report.mean_cycles_degraded(&cfg.name);
        match (clean, degraded) {
            (Some(m), None) => {
                println!("{}: mean {m} cycles over successful trials", cfg.name);
            }
            (Some(m), Some(d)) => println!(
                "{}: mean {m} cycles over successful trials \
                 (degraded trials excluded: mean {d} cycles)",
                cfg.name
            ),
            (None, Some(d)) => println!(
                "{}: no successful trials (degraded salvage: mean {d} cycles)",
                cfg.name
            ),
            (None, None) => println!("{}: no successful trials", cfg.name),
        }
    }

    if let Some(path) = flags.get("csv") {
        std::fs::write(path, report.to_csv())
            .map_err(|e| format!("cannot write CSV to `{path}`: {e}"))?;
    }
    if let Some(path) = flags.get("json") {
        std::fs::write(path, report.to_json())
            .map_err(|e| format!("cannot write JSON to `{path}`: {e}"))?;
    }

    if report.interrupted {
        // Salvage, not failure: the partial table above is real data and
        // the journal has everything needed to finish the grid later.
        eprintln!(
            "note: sweep interrupted by --max-cells after {} journaled cells; \
             the table above is partial — finish with `--resume <journal>`",
            report.trials.len()
        );
        return Ok(());
    }
    let dead = report.failed_configs();
    if dead.is_empty() {
        Ok(())
    } else {
        Err(format!("every trial failed for: {}", dead.join(", ")))
    }
}

fn serve_grid_descriptor(
    which: &str,
    machine_name: &str,
    threads: usize,
    spec: &ServeSpec,
    flags: &HashMap<String, String>,
) -> String {
    // Spec-resolved values go in canonically (so defaults and explicit
    // flags fingerprint identically); the remaining flags (n, card,
    // index, configs, ...) go in raw, sorted, minus output-only flags.
    let mut kv: Vec<(&str, &str)> = flags
        .iter()
        .filter(|(k, _)| {
            !matches!(
                k.as_str(),
                "journal" | "resume" | "max-cells" | "csv" | "json" | "jobs"
                    | "shards" | "trace-dir" | "machine" | "threads" | "tenants"
                    | "duration" | "arrivals" | "lanes" | "queue-cap" | "tokens"
                    | "refill" | "deadline" | "breaker" | "epoch" | "outage"
                    | "advisor" | "seed"
            )
        })
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .collect();
    kv.sort_unstable();
    let rest: Vec<String> = kv.iter().map(|(k, v)| format!("{k}={v}")).collect();
    let outage =
        spec.outage.map_or_else(|| "none".to_string(), |o| o.canonical());
    // `advisor` is appended only when non-default, so every pre-existing
    // static journal still fingerprints (and resumes) identically.
    let advisor = match spec.advisor {
        ServeAdvisor::Static => String::new(),
        other => format!(" advisor={}", other.canonical()),
    };
    format!(
        "serve {which} machine={machine_name} threads={threads} tenants={} \
         duration={} arrivals={} lanes={} queue-cap={} tokens={} refill={} \
         deadline={} breaker={} epoch={} outage={outage} seed={}{advisor} {}",
        spec.tenants,
        spec.duration_mcycles,
        spec.arrivals.canonical(),
        spec.lanes,
        spec.queue_cap,
        spec.bucket_cap,
        spec.refill_milli_per_mcycle,
        spec.deadline_mcycles,
        spec.breaker_threshold,
        spec.epoch_mcycles,
        spec.seed,
        rest.join(" ")
    )
}

/// Calibrate per-phase cycle costs for one query class under one
/// configuration by running the real engine once with tracing on:
/// top-level spans (minus `load`, which serve sessions never pay)
/// become the class's phase plan.
fn profile_phases(trace: Option<TraceLog>, total_cycles: u64) -> Vec<(String, u64)> {
    if let Some(log) = trace {
        let spans: Vec<(String, u64)> = log
            .spans()
            .iter()
            .filter(|s| s.depth == 0 && s.name != "load")
            .map(|s| (s.name.clone(), (s.end_cycles - s.begin_cycles).max(1)))
            .collect();
        if !spans.is_empty() {
            return spans;
        }
    }
    vec![("run".to_string(), total_cycles.max(1))]
}

/// `serve`: open-loop multi-tenant serving against calibrated engine
/// profiles — admission control, bounded queues, deadlines, load
/// shedding, circuit breakers, and tail-latency SLO reporting.
///
/// One real engine run per (configuration, class, health) pair captures
/// per-phase cycle costs; the serve loop is then a deterministic
/// discrete-event simulation on the model clock, so the same spec and
/// seed replay bit-identically — serial, under `--jobs N`, or resumed
/// from a `--journal`. With `--outage T1..T2:node=N` the window runs
/// against node-offline (evacuated) profiles and forces the shedding
/// ladder to its degraded tier: the expected signature is shed load and
/// degraded answers during the window, recovery after, never a wedged
/// queue.
fn cmd_serve(args: &[String]) -> Result<(), String> {
    let (pos, flags) = parse_flags(args)?;
    let which = pos
        .first()
        .ok_or("serve needs query classes, e.g. `w1` or `w1,w3`")?;
    let classes: Vec<String> = which
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(String::from)
        .collect();
    if classes.is_empty() {
        return Err("serve needs at least one query class (w1, w2, w3, w4)".to_string());
    }
    let machine = machine_arg(&flags)?;
    let threads: usize = flags
        .get("threads")
        .and_then(|s| s.parse().ok())
        .unwrap_or(machine.total_hw_threads());
    let getu = |key: &str, default: u64| -> Result<u64, String> {
        match flags.get(key) {
            Some(s) => s.parse().map_err(|_| format!("bad --{key} `{s}`")),
            None => Ok(default),
        }
    };
    let arrivals = ArrivalSpec::parse(
        flags.get("arrivals").map(String::as_str).unwrap_or("poisson:rate=3"),
    )
    .map_err(|e| e.to_string())?;
    let refill_raw = flags.get("refill").map(String::as_str).unwrap_or("4");
    let refill_milli_per_mcycle = parse_milli(refill_raw)
        .ok_or_else(|| format!("bad --refill `{refill_raw}` (tokens per Mcycle)"))?;
    let outage = flags
        .get("outage")
        .map(|s| OutageSpec::parse(s))
        .transpose()
        .map_err(|e| e.to_string())?;
    let advisor = match flags.get("advisor") {
        Some(s) => ServeAdvisor::parse(s).map_err(|e| e.to_string())?,
        None => ServeAdvisor::default(),
    };
    let spec = ServeSpec {
        tenants: getu("tenants", 8)? as usize,
        duration_mcycles: getu("duration", 50)?,
        arrivals,
        lanes: getu("lanes", 4)? as usize,
        queue_cap: getu("queue-cap", 16)? as usize,
        bucket_cap: getu("tokens", 8)?,
        refill_milli_per_mcycle,
        deadline_mcycles: getu("deadline", 5)?,
        breaker_threshold: getu("breaker", 8)?,
        epoch_mcycles: getu("epoch", 4)?,
        outage,
        advisor,
        seed: getu("seed", 42)?,
    };
    // An empty serve spec is a mis-specified run, not a vacuous
    // success: fail loudly, like the empty sweep grid.
    if let Err(e) = spec.validate() {
        eprintln!("warning: {e} — nothing to serve");
        return Err(
            "empty serve spec (need tenants >= 1, duration >= 1, arrival rate > 0)"
                .to_string(),
        );
    }
    let jobs: usize = match flags.get("jobs") {
        Some(s) => s
            .parse()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or_else(|| format!("bad --jobs `{s}` (need an integer >= 1)"))?,
        None => 1,
    };
    let max_cells: Option<usize> = flags.get("max-cells").and_then(|s| s.parse().ok());
    let trace_dir: Option<PathBuf> = flags.get("trace-dir").map(PathBuf::from);
    if let Some(dir) = &trace_dir {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create --trace-dir `{}`: {e}", dir.display()))?;
    }
    let record_sessions = trace_dir.is_some();

    // Same two presets as `sweep`, selectable via --configs.
    let all_configs = vec![
        config_from_flags(machine.clone(), &flags)?.named("os-default (+flags)"),
        {
            let tuned = TuningConfig::tuned(machine.clone());
            let mut cfg = config_from_flags(machine.clone(), &flags)?.named("tuned (+flags)");
            cfg.sim = cfg
                .sim
                .with_threads(tuned.sim.thread_placement)
                .with_policy(tuned.sim.mem_policy)
                .with_autonuma(tuned.sim.autonuma)
                .with_thp(tuned.sim.thp);
            cfg.allocator = tuned.allocator;
            cfg
        },
    ];
    let configs: Vec<TuningConfig> =
        match flags.get("configs").map(String::as_str).unwrap_or("both") {
            "both" => all_configs,
            "os-default" => vec![all_configs.into_iter().next().ok_or("no configs")?],
            "tuned" => vec![all_configs.into_iter().nth(1).ok_or("no configs")?],
            other => {
                return Err(format!(
                    "unknown --configs `{other}` (both, os-default, tuned)"
                ))
            }
        };
    // One --tier policy applies to every serve configuration: the serve
    // loop replays calibrated engine profiles, so the daemon's effect is
    // captured during each configuration's calibration run.
    let tier = single_tier_arg(&flags)?;
    let configs: Vec<TuningConfig> = if tier.is_none() {
        configs
    } else {
        configs
            .into_iter()
            .map(|c| {
                let name = format!("{} tier={}", c.name, tier.label());
                c.with_tier(tier).named(name)
            })
            .collect()
    };
    // One --engine applies to every serve configuration (like --tier):
    // the operator path shapes each class's calibrated phase costs, so
    // it enters the grid fingerprint via the raw flag. `tuple` keeps the
    // base names, so omitting the flag changes nothing.
    let engine = single_engine_arg(&flags)?;
    let configs: Vec<TuningConfig> = if engine == EngineKind::Tuple {
        configs
    } else {
        configs
            .into_iter()
            .map(|c| {
                let name = format!("{} engine={}", c.name, engine.as_str());
                c.with_engine(engine).named(name)
            })
            .collect()
    };
    let cells: Vec<CellInput> = configs
        .iter()
        .map(|c| CellInput { config: c.name.clone(), spec: spec.clone() })
        .collect();

    let grid_desc =
        serve_grid_descriptor(which, &machine.name, threads, &spec, &flags);
    let fp = grid_fingerprint(&grid_desc);

    let mut adopted: HashMap<String, CellStats> = HashMap::new();
    let mut writer: Option<JournalWriter> = None;
    if let Some(path) = flags.get("resume") {
        let (w, contents) = JournalWriter::append_raw_to(Path::new(path))
            .map_err(|e| format!("cannot resume from `{path}`: {e}"))?;
        if contents.fingerprint != fp {
            return Err(format!(
                "journal `{path}` records a different serve grid (its fingerprint \
                 {} != requested {fp}); refusing to mix results\n  journal grid:   {}\n  requested grid: {grid_desc}",
                contents.fingerprint, contents.grid_desc
            ));
        }
        if contents.torn {
            eprintln!(
                "note: discarded a torn record at the end of `{path}` \
                 (crash mid-append); that cell will re-run"
            );
        }
        for (kind, obj) in &contents.records {
            if kind == "serve-cell" {
                if let Some(cell) = CellStats::from_obj(obj) {
                    adopted.insert(cell.config.clone(), cell);
                }
            }
        }
        eprintln!(
            "resuming: {} of {} cells already journaled in `{path}`",
            adopted.len(),
            cells.len()
        );
        writer = Some(w);
    } else if let Some(path) = flags.get("journal") {
        writer = Some(
            JournalWriter::create(Path::new(path), &fp, &grid_desc)
                .map_err(|e| format!("cannot create journal `{path}`: {e}"))?,
        );
    }

    // Serve sessions are interactive-sized queries, not batch scans:
    // default to much smaller inputs than `sweep` unless overridden, so
    // per-query service time (~1 Mcycle) sits sensibly under the
    // default 5 Mcycle deadline.
    let mut plan_flags = flags.clone();
    plan_flags.entry("n".to_string()).or_insert_with(|| "8000".to_string());
    plan_flags.entry("card".to_string()).or_insert_with(|| "2000".to_string());
    let plans: Vec<WorkloadPlan> = classes
        .iter()
        .map(|c| WorkloadPlan::parse(c, &plan_flags))
        .collect::<Result<_, _>>()?;

    let calibrate = |cell_idx: usize| -> SimResult<Vec<ClassProfile>> {
        let cfg = &configs[cell_idx];
        let mut profiles = Vec::new();
        for (ci, plan) in plans.iter().enumerate() {
            let mut healthy_cfg = cfg.clone();
            healthy_cfg.sim = healthy_cfg.sim.with_trace(
                TraceConfig::default().with_label(&format!("{} {}", cfg.name, classes[ci])),
            );
            let run = plan.try_run(&healthy_cfg.env(threads))?;
            let healthy = profile_phases(run.trace, run.cycles);
            let (degraded, evacuated_pages) = if let Some(o) = spec.outage {
                let mut dcfg = cfg.clone();
                // Region 2 is the first region where workload pages
                // have landed on remote nodes (0/1 are load/init), so
                // the outage actually evacuates something.
                let fault_spec = format!("offline@2:node={}", o.node);
                let fault_plan = FaultPlan::parse(&fault_spec, dcfg.sim.seed)?;
                dcfg = dcfg.with_faults(fault_plan);
                dcfg.sim = dcfg.sim.with_trace(TraceConfig::default().with_label(
                    &format!("{} {} offline", cfg.name, classes[ci]),
                ));
                let drun = plan.try_run(&dcfg.env(threads))?;
                (profile_phases(drun.trace, drun.cycles), drun.counters.evacuated_pages)
            } else {
                (healthy.clone(), 0)
            };
            profiles.push(ClassProfile {
                name: classes[ci].clone(),
                healthy,
                degraded,
                evacuated_pages,
            });
        }
        Ok(profiles)
    };

    let lanes = spec.lanes;
    let mut sink = |stats: &CellStats,
                    profiles: &[ClassProfile],
                    sessions: &[Session]|
     -> SimResult<()> {
        let harness = |what: String| SimError::Harness { what };
        if let Some(w) = writer.as_mut() {
            w.append_kind("serve-cell", &stats.fields_json())
                .map_err(|e| harness(format!("journal write failed: {e}")))?;
        }
        if let Some(dir) = &trace_dir {
            let spans: Vec<SessionSpan> = sessions
                .iter()
                .map(|s| SessionSpan {
                    lane: s.lane,
                    tenant: s.tenant,
                    class: profiles
                        .get(s.class)
                        .map_or_else(String::new, |p| p.name.clone()),
                    arrival: s.arrival,
                    start: s.start,
                    end: s.end,
                    outcome: s.outcome.label().to_string(),
                    burned: s.burned,
                })
                .collect();
            let depth: Vec<(u64, u64)> =
                stats.epochs.iter().map(|e| (e.t_cycles, e.depth)).collect();
            let json = sessions_to_chrome_json(
                &format!("serve · {}", stats.config),
                lanes,
                &spans,
                &depth,
            );
            let path = dir.join(format!("{}-sessions.json", slug(&stats.config)));
            std::fs::write(&path, json).map_err(|e| {
                harness(format!("cannot write sessions `{}`: {e}", path.display()))
            })?;
        }
        Ok(())
    };
    let report = run_cells(
        &cells,
        &adopted,
        jobs,
        max_cells,
        record_sessions,
        &calibrate,
        &mut sink,
    )
    .map_err(|e| e.to_string())?;

    println!(
        "serve {which} on machine {} — {} tenants, {} Mcycles, arrivals {}, \
         deadline {} Mcycles:",
        machine.name,
        spec.tenants,
        spec.duration_mcycles,
        spec.arrivals.canonical(),
        spec.deadline_mcycles
    );
    print!("{}", report.table());
    for c in &report.cells {
        let t = c.totals();
        println!(
            "{}: {} arrivals, {} admitted, {} completed, drained at {} cycles, \
             {} wasted cycles, {} pages evacuated",
            c.config,
            t.arrivals,
            t.admitted,
            t.completed,
            c.end_cycles,
            c.wasted_cycles,
            c.evacuated_pages
        );
        if spec.outage.is_some() {
            let pct = |p: u64| format!("{}.{}%", p / 10, p % 10);
            let recovery = if c.retune_cycles > 0 {
                format!("re-tuned at {} cycles", c.retune_cycles)
            } else {
                "never re-tuned (placement residue persists)".to_string()
            };
            println!(
                "{}: slo pre-outage {}, post-recovery {} (gap {} permille) — {recovery}",
                c.config,
                pct(c.slo_pre_permille),
                pct(c.slo_post_permille),
                c.recovery_gap_permille()
            );
        }
    }

    if let Some(path) = flags.get("csv") {
        std::fs::write(path, report.to_csv())
            .map_err(|e| format!("cannot write CSV to `{path}`: {e}"))?;
    }
    if let Some(path) = flags.get("json") {
        std::fs::write(path, report.to_json())
            .map_err(|e| format!("cannot write JSON to `{path}`: {e}"))?;
    }

    if report.interrupted {
        eprintln!(
            "note: serve interrupted by --max-cells after {} journaled cells; \
             the table above is partial — finish with `--resume <journal>`",
            report.cells.len()
        );
    }
    Ok(())
}

/// `trace`: render or convert a recorded `.trace` artifact.
///
/// With no output flags, prints the `perf stat`-style counter report
/// reconstructed from the artifact's epoch samples. `--chrome OUT`
/// writes Chrome `trace_event` JSON (loadable in Perfetto or
/// `chrome://tracing`); `--csv OUT` writes the epoch-binned counter
/// timeline; `--report` forces the report even when converting.
fn cmd_trace(args: &[String]) -> Result<(), String> {
    let (pos, flags) = parse_flags(args)?;
    let file = pos.first().ok_or("trace needs a .trace artifact FILE")?;
    let trace = Trace::read_file(Path::new(file))
        .map_err(|e| format!("cannot read trace `{file}`: {e}"))?;
    let mut converted = false;
    if let Some(out) = flags.get("chrome") {
        std::fs::write(out, trace.to_chrome_json())
            .map_err(|e| format!("cannot write Chrome JSON to `{out}`: {e}"))?;
        println!("wrote Chrome trace_event JSON to {out}");
        converted = true;
    }
    if let Some(out) = flags.get("csv") {
        std::fs::write(out, trace.to_timeline_csv())
            .map_err(|e| format!("cannot write timeline CSV to `{out}`: {e}"))?;
        println!("wrote epoch timeline CSV to {out}");
        converted = true;
    }
    if let Some(out) = flags.get("decisions") {
        std::fs::write(out, trace.to_decisions_csv())
            .map_err(|e| format!("cannot write decisions CSV to `{out}`: {e}"))?;
        println!("wrote advisor decisions CSV to {out}");
        converted = true;
    }
    if !converted || flags.contains_key("report") {
        print!("{}", trace.perf_report());
    }
    Ok(())
}

fn cmd_tpch(args: &[String]) -> Result<(), String> {
    let (pos, flags) = parse_flags(args)?;
    let qnum: usize = pos
        .first()
        .and_then(|s| s.parse().ok())
        .filter(|q| (1..=22).contains(q))
        .ok_or("tpch needs a query number 1..22")?;
    let sf: f64 = flags.get("sf").and_then(|s| s.parse().ok()).unwrap_or(0.005);
    let system = match flags.get("system").map(String::as_str).unwrap_or("monetdb") {
        "monetdb" => SystemKind::MonetDbLike,
        "postgresql" | "postgres" => SystemKind::PostgresLike,
        "mysql" => SystemKind::MySqlLike,
        "dbmsx" => SystemKind::DbmsX,
        "quickstep" => SystemKind::QuickstepLike,
        other => return Err(format!("unknown system `{other}`")),
    };
    let machine = machine_arg(&flags)?;
    let engine = single_engine_arg(&flags)?;
    let batch = match flags.get("batch-size") {
        Some(b) => parse_batch_size(b).map_err(|e| e.to_string())?,
        None => DEFAULT_BATCH_SIZE,
    };
    let env = if flags.contains_key("tuned") {
        WorkloadEnv {
            sim: nqp::sim::SimConfig::os_default(machine)
                .with_policy(MemPolicy::FirstTouch)
                .with_autonuma(false)
                .with_thp(false),
            allocator: AllocatorKind::Tbbmalloc,
            threads: 16,
            engine,
            batch,
        }
    } else {
        WorkloadEnv::os_default(machine).with_engine(engine).with_batch(batch)
    };
    let data = TpchData::generate(sf, 42);
    let mut db = DbSystem::boot(system, &env, &data);
    let _cold = db.run(qnum);
    let out = db.run(qnum);
    println!(
        "Q{qnum} ({}) on {}: {} cycles, {} rows",
        query_name(qnum),
        system.label(),
        out.latency_cycles,
        out.rows.len()
    );
    for row in out.rows.iter().take(10) {
        let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
        println!("  | {}", cells.join(" | "));
    }
    if out.rows.len() > 10 {
        println!("  | ... {} more rows", out.rows.len() - 10);
    }
    Ok(())
}
