//! # nqp — efficient in-memory query processing on NUMA systems
//!
//! Umbrella crate for the workspace. Each subsystem lives in its own
//! crate, re-exported here under a short module name:
//!
//! * [`topology`] — NUMA node graphs and the paper's machine presets.
//! * [`sim`] — the deterministic NUMA machine simulator.
//! * [`alloc`] — behavioural models of seven dynamic memory allocators.
//! * [`datagen`] — seeded dataset generators (moving cluster, sequential,
//!   zipfian, join tables, TPC-H).
//! * [`storage`] — the simulated heap and typed record layouts.
//! * [`indexes`] — ART, Masstree-style, B+tree, and skip-list indexes.
//! * [`query`] — aggregation and join workloads (W1–W4).
//! * [`engines`] — the mini relational engine and TPC-H Q1–Q22 (W5).
//! * [`advisor`] — the Figure 10 flowchart and the epoch-driven online
//!   controller (guarded re-tuning, rollback, fault circuit breaker).
//! * [`core`] — experiment runner and the Figure 10 decision advisor.
//! * [`trace`] — deterministic trace artifacts and exporters (Chrome
//!   `trace_event` JSON, CSV timelines, `perf stat`-style reports).
//! * [`serve`] — open-loop multi-tenant serve driver: admission
//!   control, deadlines, load shedding, tail-latency SLO reporting.
//! * [`tier`] — tiered-memory daemon: epoch-driven page promotion and
//!   demotion between DRAM and NVM/CXL slow-tier nodes.

pub use nqp_advisor as advisor;
pub use nqp_alloc as alloc;
pub use nqp_core as core;
pub use nqp_datagen as datagen;
pub use nqp_engines as engines;
pub use nqp_indexes as indexes;
pub use nqp_query as query;
pub use nqp_serve as serve;
pub use nqp_sim as sim;
pub use nqp_storage as storage;
pub use nqp_tier as tier;
pub use nqp_topology as topology;
pub use nqp_trace as trace;
