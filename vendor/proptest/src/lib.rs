//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements the subset of proptest used by the workspace's
//! property tests: the [`proptest!`] macro, range and `any::<T>()`
//! strategies, tuple and `prop::collection::vec` combinators, and the
//! `prop_assert*` macros. Each test runs `ProptestConfig::cases`
//! deterministic cases (seeded from the test name and case index).
//! There is no shrinking: a failing case reports its inputs via the
//! generated panic message instead.

use std::ops::{Range, RangeInclusive};

/// Deterministic generator backing each test case (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator for (test, case) — deterministic across runs.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed ^ 0x5851_f42d_4c95_7f2d }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `u64` below `n` (n > 0).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Per-test configuration; only `cases` is modelled.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A value generator: the heart of every `arg in strategy` binding.
pub trait Strategy {
    /// The type of generated values.
    type Value;
    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Whole-domain strategies for primitive types (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

/// Strategy for `any::<T>()`.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_strategy_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(width) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let width = (hi as i128 - lo as i128) as u64;
                let off = if width == u64::MAX {
                    rng.next_u64()
                } else {
                    rng.below(width + 1)
                };
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_strategy_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($s:ident . $idx:tt),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_strategy_tuple!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4)
);

/// `Just` strategy: always the same value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The `prop::` namespace of combinators.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// Strategy for `Vec`s whose length is drawn from `size`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            elem: S,
            size: Range<usize>,
        }

        /// `prop::collection::vec(element_strategy, len_range)`.
        pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
            assert!(size.start < size.end, "empty vec size range");
            VecStrategy { elem, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let span = (self.size.end - self.size.start) as u64;
                let len = self.size.start + rng.below(span) as usize;
                (0..len).map(|_| self.elem.generate(rng)).collect()
            }
        }
    }
}

/// FNV-1a of the test name: the per-test seed base.
pub fn seed_of(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Everything the property tests import.
pub mod prelude {
    pub use super::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any,
        Arbitrary, Just, ProptestConfig, Strategy, TestRng,
    };
}

/// Fallible assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err(format!(
                "assertion failed at {}:{}: {}",
                file!(), line!(), stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err(format!(
                "assertion failed at {}:{}: {}",
                file!(), line!(), format!($($fmt)+)
            ));
        }
    };
}

/// Fallible equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!(
                "assertion failed at {}:{}: {:?} != {:?}",
                file!(), line!(), l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!(
                "assertion failed at {}:{}: {:?} != {:?} ({})",
                file!(), line!(), l, r, format!($($fmt)+)
            ));
        }
    }};
}

/// Fallible inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err(format!(
                "assertion failed at {}:{}: both sides equal {:?}",
                file!(), line!(), l
            ));
        }
    }};
}

/// The property-test macro: each `fn name(arg in strategy, ...)` becomes
/// a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let base = $crate::seed_of(stringify!($name));
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::new(
                    base ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                );
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let result: ::std::result::Result<(), ::std::string::String> =
                    (|| { $body Ok(()) })();
                if let Err(msg) = result {
                    panic!(
                        "property {} failed on case {}/{}: {}",
                        stringify!($name), case, config.cases, msg
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_respected(x in 3u64..10, y in -5i32..=5) {
            prop_assert!(x >= 3 && x < 10);
            prop_assert!((-5..=5).contains(&y));
        }

        #[test]
        fn vecs_sized(v in prop::collection::vec((any::<bool>(), 0u64..4), 1..9)) {
            prop_assert!(!v.is_empty() && v.len() < 9);
            for (_, n) in &v {
                prop_assert!(*n < 4, "n={} escaped its range", n);
            }
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let s = (any::<u64>(), 0u64..100);
        let mut a = TestRng::new(9);
        let mut b = TestRng::new(9);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    #[test]
    #[should_panic(expected = "failed on case")]
    fn failures_report_the_case() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(_x in 0u64..4) {
                prop_assert!(false, "intentional");
            }
        }
        always_fails();
    }
}
