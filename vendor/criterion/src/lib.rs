//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements the subset of criterion's API the workspace's
//! microbenchmarks use: `Criterion::benchmark_group`, the chained
//! `measurement_time`/`sample_size` knobs, `bench_function` with
//! `Bencher::iter` / `Bencher::iter_batched`, and the `criterion_group!`
//! / `criterion_main!` macros. Instead of criterion's statistical
//! sampling it runs each routine `sample_size` times after a short
//! warm-up and prints the mean wall time — enough to compare kernels by
//! eye, with none of the dependencies.

use std::time::{Duration, Instant};

/// How batched setup output is amortized; accepted for API
/// compatibility, the stub treats all variants alike.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("group {name}");
        BenchmarkGroup { samples: 10 }
    }
}

/// A named set of benchmarks sharing measurement settings.
#[derive(Debug)]
pub struct BenchmarkGroup {
    samples: usize,
}

impl BenchmarkGroup {
    /// Accepted for compatibility; the stub's cost model is per-sample,
    /// not per-wall-clock-window.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Number of timed runs per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Time one routine and print its mean wall time.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { samples: self.samples, total: Duration::ZERO, runs: 0 };
        f(&mut b);
        let mean = b.total.checked_div(b.runs.max(1) as u32).unwrap_or_default();
        println!("  {id}: {mean:?} mean over {} runs", b.runs);
        self
    }

    /// End the group (printing is already done incrementally).
    pub fn finish(&mut self) {}
}

/// Passed to each benchmark closure; times the routine it is given.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    total: Duration,
    runs: usize,
}

impl Bencher {
    /// Time `routine` over the configured number of samples, after one
    /// untimed warm-up run.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.total += start.elapsed();
            self.runs += 1;
        }
    }

    /// Like [`iter`](Self::iter), but re-runs `setup` untimed before
    /// each timed call so the routine can consume its input.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total += start.elapsed();
            self.runs += 1;
        }
    }
}

/// Bundle benchmark functions under one name, as upstream does.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($bench(&mut criterion);)+
        }
    };
}

/// Generate `fn main()` running the listed groups (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_runs_sample_size_times() {
        let mut c = Criterion::default();
        let mut count = 0usize;
        let mut group = c.benchmark_group("t");
        group.sample_size(5).bench_function("count", |b| b.iter(|| count += 1));
        // 5 timed + 1 warm-up.
        assert_eq!(count, 6);
        group.finish();
    }

    #[test]
    fn iter_batched_reruns_setup() {
        let mut c = Criterion::default();
        let mut setups = 0usize;
        c.benchmark_group("t").sample_size(3).bench_function("b", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u64; 16]
                },
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        assert_eq!(setups, 4);
    }
}
