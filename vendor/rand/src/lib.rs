//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *subset* of `rand`'s API it actually uses: `StdRng`
//! seeded via [`SeedableRng::seed_from_u64`], and the [`RngExt`]
//! extension methods `random` / `random_range`. The generator is
//! xoshiro256++ (the same family real `StdRng` has used), seeded through
//! splitmix64, so streams are deterministic, well-distributed, and fast.
//! Numeric streams are NOT bit-compatible with upstream `rand` — nothing
//! in this workspace depends on upstream's exact values, only on
//! determinism per seed.

use std::ops::{Range, RangeInclusive};

/// Core of any generator: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Extension methods for producing typed values; blanket-implemented for
/// every [`RngCore`].
pub trait RngExt: RngCore + Sized {
    /// A uniformly random value of `T` over its whole domain
    /// (`f32`/`f64`: the unit interval `[0, 1)`).
    fn random<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// A uniformly random value in `range`
    /// (`low..high` or `low..=high`; the half-open form must be
    /// non-empty). The element type is a free parameter, as upstream,
    /// so unsuffixed literal bounds unify with the expected output.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore> RngExt for R {}

/// Types with a natural whole-domain uniform distribution.
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn from_rng<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        u128::from_rng(rng) as i128
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits.
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` using the top 24 bits.
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that can be sampled uniformly for element type `T`.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let off = (u128::from_rng(rng) % width) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                if width == 0 {
                    // Whole u128 domain cannot happen for <=64-bit types.
                    return <$t>::from_rng(rng);
                }
                let off = (u128::from_rng(rng) % width) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::from_rng(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f32::from_rng(rng) * (self.end - self.start)
    }
}

/// The bundled generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256++ seeded via splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, as the xoshiro authors recommend.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let va: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random()).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(va, (0..8).map(|_| c.random()).collect::<Vec<u64>>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.random_range(-50i64..50);
            assert!((-50..50).contains(&x));
            let y = rng.random_range(3u32..=9);
            assert!((3..=9).contains(&y));
            let z = rng.random_range(0usize..7);
            assert!(z < 7);
            let f = rng.random_range(2.0f64..3.0);
            assert!((2.0..3.0).contains(&f));
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn degenerate_inclusive_range_is_constant() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(rng.random_range(5u64..=5), 5);
    }

    #[test]
    fn random_values_vary() {
        let mut rng = StdRng::seed_from_u64(3);
        let vals: Vec<u64> = (0..64).map(|_| rng.random()).collect();
        let distinct: std::collections::HashSet<_> = vals.iter().collect();
        assert!(distinct.len() > 60);
        let bools: Vec<bool> = (0..64).map(|_| rng.random()).collect();
        assert!(bools.iter().any(|&b| b) && bools.iter().any(|&b| !b));
    }
}
